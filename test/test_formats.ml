(* The precision-format lattice: Formats.round must be a correct
   round-to-nearest-even into every (ebits, mbits) format — checked against
   an independent value-space reference rounder, hand-computed binary16 and
   bfloat16 vectors (subnormals, overflow boundaries, NaN payloads), and
   the existing binary32 emulation at (8, 23). Then the lattice's
   integration seams: Config flag tokens and digests (pre-lattice
   byte-compatibility is load-bearing for every old journal, checkpoint
   and store log), the exchange-text parser's hard rejection of unknown
   format tokens, interpreter/compiled bit-identity under every named
   format, the shadow tracer's format shadows, and checkpoint/journal
   replay of pre-lattice artifacts. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let qt ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let bits = Int64.bits_of_float
let bits_eq a b = Int64.equal (bits a) (bits b)

(* ------------------------------------------------------------- generators *)

let fmt_gen =
  QCheck2.Gen.map
    (fun (ebits, mbits) -> Formats.make ~ebits ~mbits)
    QCheck2.Gen.(pair (int_range 2 8) (int_range 1 23))

(* doubles drawn uniformly from the full bit space: subnormals, huge
   magnitudes, infinities and NaNs all appear *)
let raw_float =
  QCheck2.Gen.map
    (fun (hi, lo) ->
      Int64.float_of_bits
        (Int64.logor
           (Int64.shift_left (Int64.of_int hi) 32)
           (Int64.logand (Int64.of_int lo) 0xFFFF_FFFFL)))
    QCheck2.Gen.(pair int int)

(* bias toward the interesting range of small formats: moderate exponents
   where rounding, overflow and gradual underflow actually trigger *)
let near_float =
  QCheck2.Gen.map
    (fun (frac, exp, sign) ->
      let v = ldexp (Float.of_int frac /. 1e9) exp in
      if sign then -.v else v)
    QCheck2.Gen.(triple (int_bound 1_000_000_000) (int_range (-160) 160) bool)

let any_float = QCheck2.Gen.oneof [ raw_float; near_float ]

(* ------------------------------------------ independent reference rounder *)

(* Value-space round-to-nearest-even, sharing no code (and no bit tricks)
   with Formats.round: find the format's ulp at |x|, split |x| into
   quotient and fraction on that grid (both exact in binary64 because the
   quotient has at most mbits+1 <= 24 significant bits), and pick a
   neighbour. *)
let ref_round (t : Formats.t) x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity || x = 0.0 then x
  else begin
    let mb = t.Formats.mbits in
    let a = Float.abs x in
    let sgn = if Float.sign_bit x then -1.0 else 1.0 in
    let _, e' = Float.frexp a in
    (* a = m * 2^e' with 0.5 <= m < 1, so a's binade exponent is e' - 1 *)
    let ue = max (e' - 1) (Formats.emin t) in
    let ulp = ldexp 1.0 (ue - mb) in
    let scaled = a /. ulp in
    let q = Float.floor scaled in
    let frac = scaled -. q in
    let up = frac > 0.5 || (frac = 0.5 && Float.rem q 2.0 = 1.0) in
    let v = (q +. if up then 1.0 else 0.0) *. ulp in
    if v > Formats.max_value t then sgn *. Float.infinity else sgn *. v
  end

let agrees_with_reference =
  qt ~count:3000 "formats: round agrees with the value-space reference"
    QCheck2.Gen.(pair fmt_gen any_float)
    (fun (f, x) ->
      if Float.is_nan x then Float.is_nan (Formats.round f x)
      else
        let got = Formats.round f x and want = ref_round f x in
        bits_eq got want
        || QCheck2.Test.fail_reportf "round %s %h = %h, reference %h" (Formats.name f) x
             got want)

let idempotent =
  qt ~count:2000 "formats: round is bitwise idempotent"
    QCheck2.Gen.(pair fmt_gen any_float)
    (fun (f, x) ->
      let once = Formats.round f x in
      bits_eq once (Formats.round f once))

let monotone =
  qt ~count:2000 "formats: round is monotone"
    QCheck2.Gen.(tup3 fmt_gen any_float any_float)
    (fun (f, x, y) ->
      if Float.is_nan x || Float.is_nan y then true
      else
        let x, y = if x <= y then (x, y) else (y, x) in
        Formats.round f x <= Formats.round f y)

let sign_symmetric =
  qt ~count:2000 "formats: round commutes with negation"
    QCheck2.Gen.(pair fmt_gen any_float)
    (fun (f, x) -> bits_eq (Formats.round f (-.x)) (-.Formats.round f x))

(* every point of the format's own grid — normals and subnormals, built as
   k * 2^(ue - mbits) — is a fixed point of round *)
let grid_exact =
  qt ~count:2000 "formats: representable values are exact"
    QCheck2.Gen.(tup4 fmt_gen nat nat bool)
    (fun (f, kr, er, neg) ->
      let k = kr mod (1 lsl (f.Formats.mbits + 1)) in
      let ue =
        Formats.emin f + (er mod (Formats.emax f - Formats.emin f + 1))
      in
      let v = ldexp (Float.of_int k) (ue - f.Formats.mbits) in
      let v = if neg then -.v else v in
      Formats.is_exact f v && bits_eq (Formats.round f v) v)

let single_is_f32 =
  qt ~count:2000 "formats: (8,23) is bit-identical to the binary32 emulation"
    any_float
    (fun x ->
      bits_eq (Formats.round Formats.single x) (F32.round x)
      && bits_eq (Formats.round (Formats.make ~ebits:8 ~mbits:23) x) (F32.round x)
      && (Float.is_nan x || bits_eq (ref_round Formats.single x) (F32.round x)))

let double_is_identity =
  qt ~count:1000 "formats: binary64 rounds to itself" any_float (fun x ->
      bits_eq (Formats.round Formats.double x) x)

let token_roundtrip =
  qt ~count:500 "formats: e<E>m<M> tokens round-trip" fmt_gen (fun f ->
      match Formats.of_string (Formats.token f) with
      | Some g -> Formats.equal f g
      | None -> false)

(* ------------------------------------------------------ reference vectors *)

let check_round name f x expect =
  let got = Formats.round f x in
  if not (bits_eq got expect) then
    Alcotest.failf "%s: round %s %h = %h (bits %Lx), expected %h (bits %Lx)" name
      (Formats.name f) x got (bits got) expect (bits expect)

let test_half_vectors () =
  let h = Formats.half in
  let r = check_round "half" h in
  (* largest finite: (2 - 2^-10) * 2^15 = 65504 *)
  checkb "max_value" true (Formats.max_value h = 65504.0);
  r 65504.0 65504.0;
  r 65503.999 65504.0;
  (* the overflow boundary: the tie at 65520 (midpoint to the next binade
     base 65536, which is out of range) rounds away to infinity *)
  r 65519.999 65504.0;
  r 65520.0 Float.infinity;
  r 65536.0 Float.infinity;
  r (-65520.0) Float.neg_infinity;
  r Float.infinity Float.infinity;
  (* normal/subnormal frontier: 2^-14 is the smallest normal *)
  checkb "min_normal" true (Formats.min_normal h = ldexp 1.0 (-14));
  r (ldexp 1.0 (-14)) (ldexp 1.0 (-14));
  (* smallest subnormal 2^-24 is exact; its half, 2^-25, is the tie with
     zero (even), anything above it rounds up to 2^-24 *)
  checkb "min_subnormal" true (Formats.min_subnormal h = ldexp 1.0 (-24));
  r (ldexp 1.0 (-24)) (ldexp 1.0 (-24));
  r (ldexp 1.0 (-25)) 0.0;
  r (ldexp 1.5 (-25)) (ldexp 1.0 (-24));
  r (ldexp 1.0 (-26)) 0.0;
  (* underflow keeps the sign: -2^-25 goes to -0.0, not +0.0 *)
  checkb "signed underflow" true
    (bits_eq (Formats.round h (-.ldexp 1.0 (-25))) (-0.0));
  (* gradual underflow: 3 * 2^-25 sits between subnormals 2^-24 and 2^-23,
     tie to even picks 2^-23 (grid index 2) *)
  r (ldexp 3.0 (-25)) (ldexp 1.0 (-23));
  (* mantissa ties at full precision: 1 + 2^-11 is halfway between 1 and
     1 + 2^-10; even mantissa wins *)
  r (1.0 +. ldexp 1.0 (-11)) 1.0;
  r (1.0 +. ldexp 1.0 (-11) +. ldexp 1.0 (-12)) (1.0 +. ldexp 1.0 (-10));
  r (1.0 +. ldexp 3.0 (-11)) (1.0 +. ldexp 2.0 (-10))

let test_bfloat16_vectors () =
  let b = Formats.bfloat16 in
  let r = check_round "bf16" b in
  (* bfloat16 shares binary32's exponent range; max = (2 - 2^-7) * 2^127 *)
  let bmax = ldexp (2.0 -. ldexp 1.0 (-7)) 127 in
  checkb "max_value" true (Formats.max_value b = bmax);
  checkb "max decimal" true (bmax = 3.3895313892515355e38);
  r bmax bmax;
  r (ldexp 1.0 128) Float.infinity;
  (* the tie midway between max and 2^128 overflows to infinity *)
  r (ldexp (2.0 -. ldexp 1.0 (-8)) 127) Float.infinity;
  r (1.0 +. ldexp 1.0 (-8)) 1.0;
  r (1.0 +. ldexp 3.0 (-8)) (1.0 +. ldexp 2.0 (-7));
  r 1.0078125 1.0078125;
  (* min normal 2^-126, min subnormal 2^-133 *)
  r (ldexp 1.0 (-126)) (ldexp 1.0 (-126));
  r (ldexp 1.0 (-133)) (ldexp 1.0 (-133));
  r (ldexp 1.0 (-134)) 0.0;
  (* every binary64 subnormal is far below bf16's range *)
  r (Int64.float_of_bits 1L) 0.0

let test_nan_payloads () =
  (* a signaling NaN with a wide payload: rounding must truncate the
     payload to the format's mantissa width, force the quiet bit, keep the
     sign — and never turn the NaN into an infinity *)
  let payload = 0x4_DEAD_BEEF_1234L in
  let snan = Int64.float_of_bits (Int64.logor 0x7FF0_0000_0000_0000L payload) in
  List.iter
    (fun f ->
      let got = Formats.round f snan in
      checkb (Formats.name f ^ " stays NaN") true (Float.is_nan got);
      let keep =
        Int64.lognot (Int64.sub (Int64.shift_left 1L (52 - f.Formats.mbits)) 1L)
      in
      let expect =
        Int64.logor 0x7FF8_0000_0000_0000L (Int64.logand payload keep)
      in
      if not (Int64.equal (bits got) expect) then
        Alcotest.failf "%s: NaN payload %Lx, expected %Lx" (Formats.name f) (bits got)
          expect;
      (* sign bit survives *)
      let neg = Formats.round f (Int64.float_of_bits (Int64.logor Int64.min_int (bits snan))) in
      checkb (Formats.name f ^ " keeps NaN sign") true
        (Float.is_nan neg && Int64.compare (bits neg) 0L < 0))
    [ Formats.half; Formats.bfloat16; Formats.tf32 ];
  (* an already-quiet NaN whose payload fits is untouched *)
  let qnan = Int64.float_of_bits 0x7FF8_4000_0000_0000L in
  checkb "quiet half NaN unchanged" true
    (bits_eq (Formats.round Formats.half qnan) qnan)

(* -------------------------------------------------------- names and menus *)

let test_names_and_menus () =
  checkb "f16 aliases" true
    (Formats.of_string "f16" = Some Formats.half
    && Formats.of_string "half" = Some Formats.half
    && Formats.of_string "binary16" = Some Formats.half);
  checkb "bf16 aliases" true
    (Formats.of_string "bf16" = Some Formats.bfloat16
    && Formats.of_string "BFLOAT16" = Some Formats.bfloat16);
  checkb "custom token" true
    (Formats.of_string "e4m3" = Some (Formats.make ~ebits:4 ~mbits:3));
  checkb "double spellings" true
    (Formats.of_string "d" = Some Formats.double
    && Formats.of_string "e11m52" = Some Formats.double);
  checkb "rejects junk" true
    (Formats.of_string "e9m30" = None
    && Formats.of_string "em" = None
    && Formats.of_string "float128" = None);
  checks "names" "f16" (Formats.name Formats.half);
  checks "custom names fall back to the token" "e4m3"
    (Formats.name (Formats.make ~ebits:4 ~mbits:3));
  (* menus parse, dedupe and sort cheapest-first: bf16 (16 bits, 7 mant)
     before f16 (16 bits, 10 mant) before tf32 (19) before single (32) *)
  (match Formats.menu_of_string "single, f16 ,bf16,double,f16" with
  | Ok menu ->
      checks "menu order" "bf16,f16,single,double" (Formats.menu_to_string menu)
  | Error e -> Alcotest.failf "menu rejected: %s" e);
  (match Formats.menu_of_string "bf16,zz9" with
  | Error e -> checkb "error names the bad token" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "menu accepted an unknown token");
  checkb "empty menu rejected" true (Result.is_error (Formats.menu_of_string " , ,"));
  (* widths and the bench's bits-saved metric *)
  checki "half width" 16 (Formats.width Formats.half);
  checki "bf16 width" 16 (Formats.width Formats.bfloat16);
  checki "tf32 width" 19 (Formats.width Formats.tf32);
  checki "half saves" 48 (Formats.bits_saved Formats.half);
  checki "single saves" 32 (Formats.bits_saved Formats.single);
  checki "double saves" 0 (Formats.bits_saved Formats.double)

(* ------------------------------------------------- Config flag integration *)

let test_flag_tokens () =
  checks "single" "s" (Config.flag_token Config.Single);
  checks "double" "d" (Config.flag_token Config.Double);
  checks "ignore" "i" (Config.flag_token Config.Ignore);
  checks "half" "e5m10" (Config.flag_token (Config.of_format Formats.half));
  (* of_format normalizes the IEEE widths back onto the legacy flags, so
     the exchange text and digests stay byte-identical *)
  checkb "of_format single" true (Config.of_format Formats.single = Config.Single);
  checkb "of_format double" true (Config.of_format Formats.double = Config.Double);
  List.iter
    (fun fl ->
      match Config.flag_of_token (Config.flag_token fl) with
      | Some fl' -> checkb ("round-trip " ^ Config.flag_token fl) true (fl = fl')
      | None -> Alcotest.failf "token %S did not parse" (Config.flag_token fl))
    [
      Config.Single;
      Config.Double;
      Config.Ignore;
      Config.of_format Formats.half;
      Config.of_format Formats.bfloat16;
      Config.of_format (Formats.make ~ebits:3 ~mbits:2);
    ];
  checkb "friendly names accepted" true
    (Config.flag_of_token "bf16" = Some (Config.of_format Formats.bfloat16)
    && Config.flag_of_token "single" = Some Config.Single);
  checkb "junk rejected" true (Config.flag_of_token "q" = None)

(* the program the compat tests pin digests and exchange text against *)
let synthetic_program () =
  let t = Builder.create () in
  let out = Builder.alloc_f t 4 in
  let main =
    Builder.func t ~module_:"syn" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        for k = 0 to 3 do
          let c = Builder.fconst b 0.5 in
          let v = Builder.fadd b c c in
          Builder.storef b (Builder.at (out + k)) v
        done)
  in
  Builder.program t ~main

(* Pre-lattice digest compatibility. Old journals, checkpoints and store
   logs key on this digest, so for configurations that only use s/d/i it
   must forever equal the original FNV-1a over (addr, flag char) —
   reimplemented here from the pre-lattice definition, independently of
   Config.digest's token-based generalization. *)
let legacy_digest prog cfg =
  let h = ref 0xcbf29ce484222325L in
  let mix c = h := Int64.mul (Int64.logxor !h (Int64.of_int c)) 0x100000001b3L in
  Array.iter
    (fun (info : Static.insn_info) ->
      mix info.Static.addr;
      let c =
        match Config.effective cfg info with
        | Config.Single -> 's'
        | Config.Double -> 'd'
        | Config.Ignore -> 'i'
        | Config.Fmt _ -> Alcotest.fail "legacy digest asked for a lattice flag"
      in
      mix (Char.code c))
    (Static.candidates prog);
  !h

let test_digest_compat () =
  let prog = synthetic_program () in
  let cands = Static.candidates prog in
  checkb "synthetic program has candidates" true (Array.length cands > 0);
  let rng = Rng.create 20260809 in
  for _ = 1 to 50 do
    let cfg =
      Array.fold_left
        (fun acc (info : Static.insn_info) ->
          match Rng.int rng 4 with
          | 0 -> Config.set_insn acc info.Static.addr Config.Single
          | 1 -> Config.set_insn acc info.Static.addr Config.Ignore
          | 2 -> Config.set_insn acc info.Static.addr Config.Double
          | _ -> acc)
        Config.empty cands
    in
    checks "pre-lattice digest unchanged"
      (Printf.sprintf "%016Lx" (legacy_digest prog cfg))
      (Config.digest prog cfg)
  done;
  (* and lattice flags produce distinct digests — a bf16 config must never
     collide with the single config in a shared result store *)
  let all flag =
    Array.fold_left
      (fun acc (info : Static.insn_info) -> Config.set_insn acc info.Static.addr flag)
      Config.empty cands
  in
  let ds = Config.digest prog (all Config.Single) in
  let db = Config.digest prog (all (Config.of_format Formats.bfloat16)) in
  let dh = Config.digest prog (all (Config.of_format Formats.half)) in
  checkb "format digests distinct" true (ds <> db && ds <> dh && db <> dh)

let test_exchange_text () =
  let prog = synthetic_program () in
  let cands = Static.candidates prog in
  let addr0 = cands.(0).Static.addr in
  let cfg =
    Config.set_insn
      (Config.set_insn Config.empty addr0 (Config.of_format Formats.half))
      cands.(Array.length cands - 1).Static.addr
      Config.Single
  in
  (* print -> parse is observationally the identity, lattice flags included *)
  (match Config.parse prog (Config.print prog cfg) with
  | Error e -> Alcotest.failf "re-parse failed: %s" e
  | Ok cfg' ->
      Array.iter
        (fun info ->
          checkb "effective flag survives" true
            (Config.effective cfg info = Config.effective cfg' info))
        cands;
      checks "digest survives" (Config.digest prog cfg) (Config.digest prog cfg'));
  (* a pre-lattice (s/d/i-only) rendering keeps the one-character flag
     column, byte-identical to the old exchange format *)
  let legacy = Config.print prog (Config.set_insn Config.empty addr0 Config.Single) in
  List.iter
    (fun line ->
      if line <> "" then
        checkb "legacy flag column is one char" true
          (match line.[0] with 's' | 'd' | 'i' | ' ' -> true | _ -> false))
    (String.split_on_char '\n' legacy);
  (* hostile exchange text: an unknown format token is a typed error, not a
     silently dropped flag — the wire carries these to workers *)
  (match Config.parse prog ("e9m9 MODULE: syn") with
  | Error e -> checkb "names the token" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "accepted ebits=9");
  (match Config.parse prog ("z MODULE: syn") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted flag 'z'");
  (* census and bits accounting *)
  let census = Config.format_census prog cfg in
  checkb "census sees f16" true (List.mem_assoc "f16" census);
  checki "bits saved" (48 + 32) (Config.bits_saved prog cfg)

(* --------------------------------------- interpreter/compiled bit-identity *)

let all_flag_cfg flag prog =
  Array.fold_left
    (fun acc (info : Static.insn_info) -> Config.set_insn acc info.Static.addr flag)
    Config.empty (Static.candidates prog)

let fuzz_setup input vm = Vm.write_f vm 0 input

let test_differential_per_format () =
  List.iter
    (fun f ->
      let flag = Config.of_format f in
      for seed = 1 to 8 do
        let prog, input = Test_fuzz.random_program ((seed * 523) + 17) in
        let patched = Patcher.patch prog (all_flag_cfg flag prog) in
        Test_compile.differential ~checked:true ~setup:(fuzz_setup input)
          (Printf.sprintf "all-%s/seed-%d" (Formats.name f) seed)
          patched
      done)
    [ Formats.bfloat16; Formats.half; Formats.tf32; Formats.single ]

let test_differential_kernel_lattice () =
  let k = Nas_cg.make Kernel.W in
  List.iter
    (fun f ->
      let patched = Patcher.patch k.Kernel.program (all_flag_cfg (Config.of_format f) k.Kernel.program) in
      Test_compile.differential ~checked:true ~setup:k.Kernel.setup
        ("cg.W/all-" ^ Formats.name f)
        patched)
    [ Formats.bfloat16; Formats.half; Formats.tf32 ];
  (* mixed lattice config: alternate bf16 / f16 / single per candidate *)
  let i = ref 0 in
  let mixed =
    Array.fold_left
      (fun acc (info : Static.insn_info) ->
        incr i;
        let flag =
          match !i mod 3 with
          | 0 -> Config.of_format Formats.bfloat16
          | 1 -> Config.of_format Formats.half
          | _ -> Config.Single
        in
        Config.set_insn acc info.Static.addr flag)
      Config.empty
      (Static.candidates k.Kernel.program)
  in
  Test_compile.differential ~checked:true ~setup:k.Kernel.setup "cg.W/mixed-lattice"
    (Patcher.patch k.Kernel.program mixed)

(* -------------------------------------------------------- shadow formats *)

let test_shadow_format () =
  let prog, input = Test_fuzz.random_program 8461 in
  (* a bf16 shadow loses at least as much as the single shadow *)
  let run fmt =
    let tracer = Shadow_tracer.create ?fmt prog in
    let (_ : Vm.t) = Shadow_tracer.trace tracer ~setup:(fuzz_setup input) in
    Array.fold_left
      (fun acc s -> acc +. s.Shadow_tracer.sum_rel)
      0.0 (Shadow_tracer.stats tracer)
  in
  let single_err = run None in
  let bf16_err = run (Some Formats.bfloat16) in
  checkb "bf16 shadow error >= single shadow error" true (bf16_err >= single_err);
  (* all_format at single reproduces all_single exactly *)
  let a = Shadow_tracer.all_single prog in
  let b = Shadow_tracer.all_format Formats.single prog in
  checks "all_format single = all_single" (Config.digest prog a) (Config.digest prog b)

(* ------------------------------------------------- pre-lattice replay compat *)

let rec flatten_node (n : Static.node) =
  n
  ::
  (match n with
  | Static.Module (_, cs) | Static.Func (_, _, cs) | Static.Block (_, cs) ->
      List.concat_map flatten_node cs
  | Static.Insn _ -> [])

let test_checkpoint_flagged_ids () =
  let prog = synthetic_program () in
  let nodes = List.concat_map flatten_node (Static.tree prog) in
  checkb "have nodes" true (nodes <> []);
  List.iter
    (fun node ->
      (* bare pre-lattice ids resolve to the node at Single — exactly what
         an old checkpoint's passing list meant *)
      let bare = Checkpoint.node_id node in
      (match Checkpoint.resolve_flagged prog bare with
      | Ok (n', fl) ->
          checkb "bare id -> Single" true
            (Checkpoint.node_id n' = bare && fl = Config.Single)
      | Error e -> Alcotest.failf "bare id %s: %s" bare e);
      (* a Single-flagged entry renders as the bare id: new checkpoints of
         single-only campaigns are byte-identical to old ones *)
      checks "Single renders bare" bare (Checkpoint.flagged_id (node, Config.Single));
      (* lattice flags round-trip through the @token suffix *)
      List.iter
        (fun flag ->
          let id = Checkpoint.flagged_id (node, flag) in
          match Checkpoint.resolve_flagged prog id with
          | Ok (n', fl') ->
              checkb ("round-trip " ^ id) true
                (Checkpoint.node_id n' = bare && fl' = flag)
          | Error e -> Alcotest.failf "flagged id %s: %s" id e)
        [ Config.of_format Formats.bfloat16; Config.of_format Formats.half ])
    nodes;
  (* hostile suffixes are typed errors *)
  match Checkpoint.resolve_flagged prog (Checkpoint.node_id (List.hd nodes) ^ "@zz9") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an unknown flag suffix"

let test_journal_replay_compat () =
  let prog = synthetic_program () in
  let cands = Static.candidates prog in
  (* the digests a pre-lattice campaign would have journaled *)
  let cfg_single =
    Array.fold_left
      (fun acc (info : Static.insn_info) -> Config.set_insn acc info.Static.addr Config.Single)
      Config.empty cands
  in
  let d_empty = Config.digest prog Config.empty in
  let d_single = Config.digest prog cfg_single in
  let path = Filename.temp_file "craft_formats_journal" ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* a journal written by the pre-lattice system: v1 header, bare
         16-hex digests, verdict tokens, sequence numbers *)
      let oc = open_out path in
      Printf.fprintf oc "# craft-journal v1 syn\n";
      Printf.fprintf oc "%s pass 1 | (all-double)\n" d_empty;
      Printf.fprintf oc "%s fail 2 | s MODULE: syn\n" d_single;
      output_string oc "garbage-trailing-half-record";
      close_out oc;
      let j = Journal.create ~resume:true ~path prog in
      Fun.protect
        ~finally:(fun () -> Journal.close j)
        (fun () ->
          checki "both records replayed" 2 (Journal.replayed j);
          (match Journal.lookup j Config.empty with
          | Some Verdict.Pass -> ()
          | _ -> Alcotest.fail "all-double verdict lost on replay");
          (match Journal.lookup j cfg_single with
          | Some Verdict.Fail_verify -> ()
          | Some v ->
              Alcotest.failf "all-single verdict mangled: %s" (Harness.verdict_label v)
          | None -> Alcotest.fail "all-single verdict lost on replay");
          (* a lattice config is a miss, not a collision *)
          let cfg_bf16 = all_flag_cfg (Config.of_format Formats.bfloat16) prog in
          checkb "bf16 config not falsely memoized" true
            (Journal.lookup j cfg_bf16 = None);
          checki "replay hits counted" 2 (Journal.hits j)))

let suite =
  [
    agrees_with_reference;
    idempotent;
    monotone;
    sign_symmetric;
    grid_exact;
    single_is_f32;
    double_is_identity;
    token_roundtrip;
    ("formats: binary16 reference vectors", `Quick, test_half_vectors);
    ("formats: bfloat16 reference vectors", `Quick, test_bfloat16_vectors);
    ("formats: NaN payload truncation", `Quick, test_nan_payloads);
    ("formats: names, tokens and menus", `Quick, test_names_and_menus);
    ("formats: Config flag tokens", `Quick, test_flag_tokens);
    ("formats: pre-lattice digests byte-identical", `Quick, test_digest_compat);
    ("formats: exchange text round-trip and rejection", `Quick, test_exchange_text);
    ("formats: interp = compiled on fuzz programs per format", `Quick, test_differential_per_format);
    ("formats: interp = compiled on cg.W lattice configs", `Quick, test_differential_kernel_lattice);
    ("formats: shadow carries reduced-format shadows", `Quick, test_shadow_format);
    ("formats: checkpoint flagged ids replay old ids", `Quick, test_checkpoint_flagged_ids);
    ("formats: pre-lattice journal replays cleanly", `Quick, test_journal_replay_compat);
  ]
