(* Tests for the resilient evaluation subsystem: verdict classification and
   containment, retry/backoff, deterministic fault injection, and journaled
   checkpoint/resume. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let verdict_t = Alcotest.testable Harness.pp_verdict ( = )

(* The controlled synthetic target of test_search: [poison] chains use 0.1
   (inexact in binary32, so replacement shifts their output), benign chains
   use 0.5 (exact). The builder is deterministic, so two calls produce
   identical programs and comparable configuration digests. *)
let synthetic ?eval_steps ?faults ~n_ops ~poison () =
  let t = Builder.create () in
  let out = Builder.alloc_f t n_ops in
  let main =
    Builder.func t ~module_:"syn" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        for k = 0 to n_ops - 1 do
          let c = Builder.fconst b (if List.mem k poison then 0.1 else 0.5) in
          let v = Builder.fadd b c c in
          Builder.storef b (Builder.at (out + k)) v
        done)
  in
  let program = Builder.program t ~main in
  let reference =
    Array.init n_ops (fun k -> if List.mem k poison then 0.2 else 1.0)
  in
  let target =
    Bfs.Target.make ?eval_steps ?faults program
      ~setup:(fun _ -> ())
      ~output:(fun vm -> Vm.read_f vm out n_ops)
      ~verify:(fun res -> res = reference)
  in
  (program, target)

(* ------------------------------------------------- classification *)

let test_classification () =
  let ev f = Harness.eval (Harness.make f) Config.empty in
  Alcotest.check verdict_t "pass" Harness.Pass (ev (fun _ -> true));
  Alcotest.check verdict_t "fail" Harness.Fail_verify (ev (fun _ -> false));
  Alcotest.check verdict_t "trap"
    (Harness.Trapped (7, "boom"))
    (ev (fun _ -> raise (Vm.Trap (7, "boom"))));
  Alcotest.check verdict_t "timeout" Harness.Step_timeout
    (ev (fun _ -> raise (Vm.Limit 5)));
  (match ev (fun _ -> failwith "dead evaluator") with
  | Harness.Crashed _ -> ()
  | v -> Alcotest.failf "expected crash, got %a" Harness.pp_verdict v);
  (match ev (fun _ -> raise Stack_overflow) with
  | Harness.Crashed _ -> ()
  | v -> Alcotest.failf "expected crash, got %a" Harness.pp_verdict v)

let test_counters_tally () =
  let h = Harness.make (fun _ -> raise (Vm.Trap (1, "x"))) in
  ignore (Harness.eval h Config.empty);
  ignore (Harness.eval h Config.empty);
  let c = Harness.counters h in
  checki "evaluations" 2 c.Harness.evaluations;
  checki "attempts" 2 c.Harness.attempts;
  checki "trapped" 2 c.Harness.trapped;
  checki "pass" 0 c.Harness.pass

(* ------------------------------------------------- retries + backoff *)

let test_retry_recovers_transient () =
  let calls = ref 0 in
  let raw _ =
    incr calls;
    if !calls = 1 then raise (Vm.Trap (1, "flaky")) else true
  in
  let h = Harness.make ~retries:2 raw in
  Alcotest.check verdict_t "recovered" Harness.Pass (Harness.eval h Config.empty);
  let c = Harness.counters h in
  checki "one retry" 1 c.Harness.retried;
  checki "two attempts" 2 c.Harness.attempts;
  (* without retries the flaky verdict is final *)
  calls := 0;
  let h0 = Harness.make ~retries:0 raw in
  Alcotest.check verdict_t "no retry" (Harness.Trapped (1, "flaky"))
    (Harness.eval h0 Config.empty)

let test_backoff_deterministic () =
  let h = Harness.make ~retries:3 ~backoff:2 (fun _ -> raise (Vm.Limit 1)) in
  Alcotest.check verdict_t "still timeout" Harness.Step_timeout
    (Harness.eval h Config.empty);
  let c = Harness.counters h in
  checki "attempts" 4 c.Harness.attempts;
  checki "retried" 3 c.Harness.retried;
  (* exponential: 2*1 + 2*2 + 2*4 *)
  checki "backoff units" 14 c.Harness.backoff_units

let test_retry_fail_verify_opt_in () =
  let calls = ref 0 in
  let raw _ =
    incr calls;
    !calls > 1
  in
  let h = Harness.make ~retries:1 raw in
  Alcotest.check verdict_t "fail is final by default" Harness.Fail_verify
    (Harness.eval h Config.empty);
  calls := 0;
  let h' = Harness.make ~retries:1 ~retry_fail_verify:true raw in
  Alcotest.check verdict_t "retried to pass" Harness.Pass (Harness.eval h' Config.empty)

(* ------------------------------------------------- serialization *)

let test_verdict_string_roundtrip () =
  List.iter
    (fun v ->
      match Harness.verdict_of_string (Harness.verdict_to_string v) with
      | Some v' -> Alcotest.check verdict_t "roundtrip" v v'
      | None ->
          Alcotest.failf "did not parse back: %s" (Harness.verdict_to_string v))
    [
      Harness.Pass;
      Harness.Fail_verify;
      Harness.Step_timeout;
      Harness.Trapped (31, "replaced operand reaches a double-precision op");
      Harness.Trapped (0, "odd chars: 100% | a:b\ttab");
      Harness.Crashed "Failure(\"injected fault: evaluator crash\")";
    ];
  checkb "malformed trap" true (Harness.verdict_of_string "trap:zz" = None);
  checkb "garbage" true (Harness.verdict_of_string "bogus" = None);
  (* tokens must stay single-field for the journal line format *)
  checkb "no spaces" true
    (not
       (String.contains
          (Harness.verdict_to_string (Harness.Trapped (1, "a b c")))
          ' '))

let test_fault_spec_roundtrip () =
  let specs =
    [
      Faults.default;
      {
        Faults.seed = 99;
        rate = 0.35;
        modes = [ Faults.Trap; Faults.Bitflip; Faults.Corrupt; Faults.Crash ];
        transient = false;
      };
    ]
  in
  List.iter
    (fun s ->
      match Faults.parse (Faults.to_string s) with
      | Ok s' -> checkb "spec roundtrip" true (s = s')
      | Error e -> Alcotest.fail e)
    specs;
  checkb "bad rate rejected" true (Result.is_error (Faults.parse "rate=1.5"));
  checkb "bad mode rejected" true (Result.is_error (Faults.parse "modes=trap+nope"));
  checkb "bad field rejected" true (Result.is_error (Faults.parse "frequency=2"));
  (match Faults.parse "seed=5,rate=0.1,modes=hang,persistent" with
  | Ok s ->
      checki "seed" 5 s.Faults.seed;
      checkb "persistent" false s.Faults.transient;
      checkb "modes" true (s.Faults.modes = [ Faults.Hang ])
  | Error e -> Alcotest.fail e)

(* ------------------------------------------------- containment *)

let all_modes = [ Faults.Trap; Faults.Hang; Faults.Bitflip; Faults.Corrupt; Faults.Crash ]

(* Property: over random fuzz programs with every fault mode armed at rate
   1.0, no injected trap/hang/corruption/crash ever escapes the harness. *)
let test_no_injected_fault_escapes () =
  for seed = 1 to 6 do
    let prog, input = Test_fuzz.random_program (seed * 7919) in
    let native = Vm.create prog in
    Vm.write_f native 0 input;
    Vm.run native;
    let expected = Vm.read_f native 0 Test_fuzz.n_slots in
    let faults =
      Faults.create
        { Faults.seed; rate = 1.0; modes = all_modes; transient = false }
    in
    let target =
      Bfs.Target.make ~faults prog
        ~setup:(fun vm -> Vm.write_f vm 0 input)
        ~output:(fun vm -> Vm.read_f vm 0 Test_fuzz.n_slots)
        ~verify:(fun out -> Test_fuzz.bits_equal out expected)
    in
    let h = Harness.make ~retries:1 target.Bfs.Target.raw_eval in
    let rng = Rng.create (seed + 4242) in
    let cfgs =
      Config.empty
      :: Config.set_module Config.empty "fuzz" Config.Single
      :: List.init 10 (fun _ ->
             Array.fold_left
               (fun acc (info : Static.insn_info) ->
                 if Rng.int rng 2 = 0 then Config.set_insn acc info.Static.addr Config.Single
                 else acc)
               Config.empty (Static.candidates prog))
    in
    List.iter
      (fun cfg ->
        match Harness.eval h cfg with
        | _ -> ()
        | exception e ->
            Alcotest.failf "seed %d: fault escaped the harness: %s" seed
              (Printexc.to_string e))
      cfgs
  done

let test_search_survives_total_hostility () =
  let faults =
    Faults.create { Faults.seed = 3; rate = 1.0; modes = all_modes; transient = false }
  in
  let _, target = synthetic ~faults ~n_ops:8 ~poison:[ 2; 5 ] () in
  let h, t = Harness.wrap_target ~retries:1 target in
  let res = Bfs.search t in
  checkb "search completes" true (res.Bfs.tested > 0);
  checkb "faults actually fired" true (Faults.injected faults > 0);
  let c = Harness.counters h in
  checkb "breakdown saw infrastructure failures" true
    (c.Harness.trapped + c.Harness.timed_out + c.Harness.crashed > 0)

let test_defensive_domain_join () =
  (* an eval that always raises must fail items, never kill the wave *)
  let _, target = synthetic ~n_ops:8 ~poison:[] () in
  let hostile = { target with Bfs.Target.eval = (fun _ -> failwith "worker died") } in
  let res = Bfs.search ~options:{ Bfs.default_options with workers = 4 } hostile in
  checkb "parallel search completes" true (res.Bfs.tested > 0);
  checki "nothing passes" 0 res.Bfs.static_replaced

let test_step_budget_times_out () =
  let _, target = synthetic ~eval_steps:10 ~n_ops:8 ~poison:[] () in
  let h = Harness.make target.Bfs.Target.raw_eval in
  Alcotest.check verdict_t "budget blowout classified" Harness.Step_timeout
    (Harness.eval h Config.empty)

let test_vm_double_run_guard () =
  let program, _ = synthetic ~n_ops:2 ~poison:[] () in
  let vm = Vm.create program in
  Vm.run vm;
  checkb "second run rejected" true
    (match Vm.run vm with
    | () -> false
    | exception Invalid_argument _ -> true)

(* Under ~20% transient faults with retries, the BFS reaches the same final
   configuration as a fault-free run. *)
let equivalent_under_faults ~modes ~retry_fail_verify seed =
  let n_ops = 8 and poison = [ 2; 5 ] in
  let prog, clean_target = synthetic ~n_ops ~poison () in
  let clean = Bfs.search clean_target in
  let faults = Faults.create { Faults.seed; rate = 0.2; modes; transient = true } in
  let _, faulty_target = synthetic ~faults ~n_ops ~poison () in
  let h, t = Harness.wrap_target ~retries:2 ~retry_fail_verify faulty_target in
  let faulty = Bfs.search t in
  checkb "faults actually fired" true (Faults.injected faults > 0);
  checks "same final configuration"
    (Config.digest prog clean.Bfs.final)
    (Config.digest prog faulty.Bfs.final);
  checkb "retries were exercised" true ((Harness.counters h).Harness.retried > 0);
  checkb "faulty run passes" true faulty.Bfs.final_pass

let test_transient_faults_same_final_config () =
  equivalent_under_faults ~modes:[ Faults.Trap; Faults.Hang ] ~retry_fail_verify:false 11

let test_transient_corruption_same_final_config () =
  (* silent corruption forges fail-verify verdicts, so retries must extend
     to them for the campaign to converge on the fault-free answer *)
  equivalent_under_faults
    ~modes:[ Faults.Trap; Faults.Hang; Faults.Bitflip; Faults.Corrupt; Faults.Crash ]
    ~retry_fail_verify:true 11

(* ------------------------------------------------- journal *)

let with_temp_journal f =
  let path = Filename.temp_file "craft_journal" ".txt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_journal_roundtrip () =
  with_temp_journal (fun path ->
      let prog, _ = synthetic ~n_ops:4 ~poison:[ 1 ] () in
      let cands = Static.candidates prog in
      let cfg1 = Config.set_insn Config.empty cands.(0).Static.addr Config.Single in
      let cfg2 = Config.set_module Config.empty "syn" Config.Single in
      let j = Journal.create ~path prog in
      Journal.record j cfg1 Harness.Pass;
      Journal.record j cfg2 (Harness.Trapped (12, "replaced operand reaches a double-precision op"));
      Journal.record j Config.empty Harness.Step_timeout;
      (* duplicate digests are not re-appended *)
      Journal.record j cfg1 Harness.Fail_verify;
      checki "entries" 3 (Journal.entries j);
      Journal.close j;
      let j2 = Journal.create ~resume:true ~path prog in
      checki "replayed" 3 (Journal.replayed j2);
      checkb "verdict survives" true (Journal.lookup j2 cfg1 = Some Harness.Pass);
      checkb "payload survives" true
        (Journal.lookup j2 cfg2
        = Some (Harness.Trapped (12, "replaced operand reaches a double-precision op")));
      checkb "timeout survives" true (Journal.lookup j2 Config.empty = Some Harness.Step_timeout);
      Journal.close j2)

let test_journal_tolerates_garbage () =
  with_temp_journal (fun path ->
      let prog, _ = synthetic ~n_ops:4 ~poison:[] () in
      let j = Journal.create ~path prog in
      Journal.record j Config.empty Harness.Pass;
      Journal.close j;
      (* corrupt the file: a garbage middle line and a truncated last record *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "not a record at all\n";
      output_string oc "9f9f truncated-half-rec";
      close_out oc;
      let j2 = Journal.create ~resume:true ~path prog in
      checki "only the valid record survives" 1 (Journal.replayed j2);
      checkb "lookup works" true (Journal.lookup j2 Config.empty = Some Harness.Pass);
      Journal.close j2)

(* write -> interrupt mid-campaign (journal truncated to a prefix plus a
   half-written record) -> resume: identical final configuration, strictly
   fewer fresh evaluations, partial record dropped. *)
let test_journal_interrupt_resume () =
  with_temp_journal (fun path ->
      let n_ops = 8 and poison = [ 2; 5 ] in
      let prog, target = synthetic ~n_ops ~poison () in
      let h1, t1 = Harness.wrap_target target in
      let j1 = Journal.create ~path prog in
      let full = Bfs.search (Journal.wrap_target j1 ~harness:h1 t1) in
      let fresh_full = Journal.fresh j1 in
      Journal.close j1;
      checkb "full run recorded evaluations" true (fresh_full > 5);
      (* simulate the crash: keep the header + first 5 records, then a
         half-written line with no trailing newline *)
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      let keep = List.filteri (fun i _ -> i < 6) (List.rev !lines) in
      let oc = open_out path in
      List.iter (fun l -> output_string oc (l ^ "\n")) keep;
      output_string oc "8722950da476b334 pa";
      close_out oc;
      (* resume *)
      let h2, t2 = Harness.wrap_target target in
      let j2 = Journal.create ~resume:true ~path prog in
      let resumed = Bfs.search (Journal.wrap_target j2 ~harness:h2 t2) in
      checki "replayed the intact prefix" 5 (Journal.replayed j2);
      checks "same final configuration"
        (Config.digest prog full.Bfs.final)
        (Config.digest prog resumed.Bfs.final);
      checkb "strictly fewer fresh evaluations" true (Journal.fresh j2 < fresh_full);
      checki "resumed run completed the journal" fresh_full
        (Journal.fresh j2 + Journal.replayed j2);
      Journal.close j2)

let test_journal_resume_skips_everything () =
  with_temp_journal (fun path ->
      let prog, target = synthetic ~n_ops:6 ~poison:[ 1 ] () in
      let h1, t1 = Harness.wrap_target target in
      let j1 = Journal.create ~path prog in
      let first = Bfs.search (Journal.wrap_target j1 ~harness:h1 t1) in
      Journal.close j1;
      let h2, t2 = Harness.wrap_target target in
      let j2 = Journal.create ~resume:true ~path prog in
      let second = Bfs.search (Journal.wrap_target j2 ~harness:h2 t2) in
      checki "no fresh evaluations on resume" 0 (Journal.fresh j2);
      checki "no program runs at all" 0 (Harness.counters h2).Harness.attempts;
      checks "same final configuration"
        (Config.digest prog first.Bfs.final)
        (Config.digest prog second.Bfs.final);
      Journal.close j2)

(* ------------------------------------------------- backoff clamp *)

let test_backoff_clamped_at_ceiling () =
  (* a large retry budget with a huge base must saturate each modeled delay
     at the documented ceiling instead of overflowing [1 lsl attempt] *)
  let h = Harness.make ~retries:80 ~backoff:max_int (fun _ -> raise (Vm.Limit 1)) in
  Alcotest.check verdict_t "still timeout" Harness.Step_timeout
    (Harness.eval h Config.empty);
  let c = Harness.counters h in
  checki "all retries performed" 80 c.Harness.retried;
  checkb "accumulator did not wrap negative" true (c.Harness.backoff_units > 0);
  checki "every delay saturates at the ceiling" (80 * Harness.max_backoff_unit)
    c.Harness.backoff_units;
  (* small bases below the ceiling still follow the exponential curve *)
  let h' = Harness.make ~retries:3 ~backoff:2 (fun _ -> raise (Vm.Limit 1)) in
  ignore (Harness.eval h' Config.empty);
  checki "unclamped region unchanged" 14 (Harness.counters h').Harness.backoff_units

(* ------------------------------------------------- serialization fuzz *)

let test_verdict_roundtrip_fuzz =
  let payload =
    QCheck2.Gen.(
      string_size
        ~gen:
          (oneofl
             [ '%'; ':'; ' '; '|'; '\t'; '\n'; '\r'; 'a'; 'Z'; '0'; '('; '"'; '\\' ])
        (int_bound 30))
  in
  let gen =
    QCheck2.Gen.(
      oneof
        [
          return Harness.Pass;
          return Harness.Fail_verify;
          return Harness.Step_timeout;
          map (fun (a, s) -> Harness.Trapped (abs a, s)) (pair small_nat payload);
          map (fun s -> Harness.Crashed s) payload;
        ])
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"verdict roundtrip survives hostile payloads" gen
       (fun v ->
         let s = Harness.verdict_to_string v in
         (* single journal-field token: no reserved separator leaks through *)
         (not (String.exists (fun c -> c = ' ' || c = '|' || c = '\n' || c = '\t') s))
         && Harness.verdict_of_string s = Some v))

let test_journal_trailing_corruption_fuzz =
  let gen =
    QCheck2.Gen.(pair (int_bound 1000) (string_size ~gen:(char_range '\x00' '\x7e') (int_bound 48)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"journal tolerates corrupted trailing records" gen
       (fun (seed, junk) ->
         with_temp_journal (fun path ->
             let prog, _ = synthetic ~n_ops:4 ~poison:[ 1 ] () in
             let cands = Static.candidates prog in
             let cfg1 = Config.set_insn Config.empty cands.(0).Static.addr Config.Single in
             let crash = Harness.Crashed "odd: 100% | x\ty" in
             let j = Journal.create ~path prog in
             Journal.record j Config.empty Harness.Pass;
             Journal.record j cfg1 crash;
             Journal.close j;
             (* simulate a crash mid-append: garbage / a truncated half-record
                after the intact prefix *)
             let oc = open_out_gen [ Open_append ] 0o644 path in
             if seed mod 3 = 0 then output_string oc "\n";
             output_string oc junk;
             close_out oc;
             let j2 = Journal.create ~resume:true ~path prog in
             let ok =
               Journal.replayed j2 >= 2
               && Journal.lookup j2 Config.empty = Some Harness.Pass
               && Journal.lookup j2 cfg1 = Some crash
             in
             Journal.close j2;
             ok)))

let suite =
  [
    ("verdict classification", `Quick, test_classification);
    ("counters tally per attempt", `Quick, test_counters_tally);
    ("retry recovers a transient fault", `Quick, test_retry_recovers_transient);
    ("deterministic exponential backoff", `Quick, test_backoff_deterministic);
    ("backoff clamps at the ceiling", `Quick, test_backoff_clamped_at_ceiling);
    ("retry_fail_verify is opt-in", `Quick, test_retry_fail_verify_opt_in);
    ("verdict string roundtrip", `Quick, test_verdict_string_roundtrip);
    test_verdict_roundtrip_fuzz;
    test_journal_trailing_corruption_fuzz;
    ("fault spec parse roundtrip", `Quick, test_fault_spec_roundtrip);
    ("no injected fault escapes the harness", `Quick, test_no_injected_fault_escapes);
    ("search survives 100% fault rate", `Quick, test_search_survives_total_hostility);
    ("defensive domain join", `Quick, test_defensive_domain_join);
    ("step budget becomes a timeout verdict", `Quick, test_step_budget_times_out);
    ("vm rejects a second run", `Quick, test_vm_double_run_guard);
    ("20% transient faults: same final config", `Quick, test_transient_faults_same_final_config);
    ( "transient corruption: same final config",
      `Quick,
      test_transient_corruption_same_final_config );
    ("journal roundtrip", `Quick, test_journal_roundtrip);
    ("journal tolerates garbage + truncation", `Quick, test_journal_tolerates_garbage);
    ("journal interrupt/resume", `Quick, test_journal_interrupt_resume);
    ("journal full resume skips everything", `Quick, test_journal_resume_skips_everything);
  ]
