(* Tests for the supervised evaluation worker pool: ordering, wall-clock
   deadlines over genuinely non-terminating tasks, worker-death restarts,
   poison-task quarantine, degradation to serial, and the cooperative
   VM-watchdog cancellation path. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let verdict_t = Alcotest.testable Verdict.pp_verdict ( = )

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let has_substring ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let with_pool ?options ?log f =
  let p = Pool.create ?options ?log () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* A task that never returns and never touches the VM: the step budget and
   the cooperative watchdog are both blind to it, so only the wall-clock
   monitor's abandon-after-grace tier can resolve it. The zombie worker
   keeps sleeping and dies with the test process. *)
let hang () =
  while true do
    Unix.sleepf 0.005
  done;
  assert false

(* ------------------------------------------------- ordering *)

let test_results_in_submission_order () =
  with_pool ~options:{ Pool.default_options with workers = 3 } (fun p ->
      let thunks =
        List.init 20 (fun i () ->
            (* stagger completions so submission order <> completion order *)
            Unix.sleepf (float_of_int ((i * 7) mod 5) *. 0.002);
            Verdict.Trapped (i, "tag"))
      in
      let out = Pool.run p thunks in
      List.iteri
        (fun i v -> Alcotest.check verdict_t "order" (Verdict.Trapped (i, "tag")) v)
        out;
      let s = Pool.stats p in
      checki "all completed" 20 s.Pool.completed;
      checki "no deaths" 0 s.Pool.worker_deaths)

let test_reusable_across_waves () =
  with_pool ~options:{ Pool.default_options with workers = 2 } (fun p ->
      for _ = 1 to 5 do
        let out = Pool.run p (List.init 4 (fun _ () -> Verdict.Pass)) in
        checkb "wave all pass" true (List.for_all (( = ) Verdict.Pass) out)
      done;
      checki "20 tasks over one pool" 20 (Pool.stats p).Pool.tasks)

(* ------------------------------------------------- deadlines *)

let test_nonterminating_task_times_out () =
  let t0 = Unix.gettimeofday () in
  with_pool
    ~options:
      {
        Pool.default_options with
        workers = 2;
        deadline = Some 0.1;
        grace = 0.1;
        poll_interval = 0.005;
      }
    (fun p ->
      let thunks =
        [
          (fun () -> Verdict.Pass);
          (fun () -> hang ());
          (fun () -> Verdict.Fail_verify);
          (fun () -> Verdict.Pass);
        ]
      in
      let out = Pool.run p thunks in
      (* the hung task resolves as a timeout; every other item still
         completes — the campaign is never frozen *)
      Alcotest.check (Alcotest.list verdict_t) "verdicts"
        [ Verdict.Pass; Verdict.Step_timeout; Verdict.Fail_verify; Verdict.Pass ]
        out;
      let s = Pool.stats p in
      checkb "deadline miss recorded" true (s.Pool.deadline_misses >= 1);
      checkb "worker abandoned" true (s.Pool.abandoned >= 1);
      checkb "replacement staffed" true (s.Pool.restarts >= 1);
      checkb "events narrated" true (Pool.drain_events p <> []));
  checkb "completed within deadline + grace (not hung forever)" true
    (Unix.gettimeofday () -. t0 < 5.0)

let test_cooperative_vm_cancel () =
  (* A VM program that runs far past the deadline: the monitor's first tier
     (cancel flag -> per-insn watchdog -> Vm.Deadline) must stop it without
     ever reaching the abandon tier. *)
  let t = Builder.create () in
  let cell = Builder.alloc_f t 1 in
  let main =
    Builder.func t ~module_:"spin" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        Builder.for_range b 0 50_000_000 (fun _ ->
            let v = Builder.loadf b (Builder.at cell) in
            Builder.storef b (Builder.at cell) (Builder.fadd b v v)))
  in
  let prog = Builder.program t ~main in
  with_pool
    ~options:
      {
        Pool.default_options with
        workers = 1;
        deadline = Some 0.05;
        grace = 30.0 (* far away: only the cooperative tier may fire *);
        poll_interval = 0.005;
      }
    (fun p ->
      let v =
        Pool.run_one p (fun () ->
            Verdict.classify (fun () ->
                let vm = Vm.create prog in
                Vm.run vm;
                true))
      in
      Alcotest.check verdict_t "cancelled cooperatively" Verdict.Step_timeout v;
      let s = Pool.stats p in
      checkb "deadline miss recorded" true (s.Pool.deadline_misses >= 1);
      checki "never abandoned" 0 s.Pool.abandoned;
      checki "no worker lost" 0 s.Pool.worker_deaths)

(* ------------------------------------------------- worker deaths *)

let test_worker_death_restart_and_quarantine () =
  with_pool
    ~options:{ Pool.default_options with workers = 2; quarantine_after = 2 }
    (fun p ->
      let out =
        Pool.run p
          [
            (fun () -> Verdict.Pass);
            (fun () -> failwith "evaluator blew past containment");
            (fun () -> Verdict.Pass);
          ]
      in
      (match out with
      | [ a; b; c ] ->
          Alcotest.check verdict_t "first" Verdict.Pass a;
          Alcotest.check verdict_t "third" Verdict.Pass c;
          (match b with
          | Verdict.Crashed msg ->
              checkb "quarantine reason recorded" true
                (String.length msg > 0
                && has_substring ~sub:"quarantined" msg)
          | v -> Alcotest.failf "expected quarantine crash, got %a" Verdict.pp_verdict v)
      | _ -> Alcotest.fail "wrong arity");
      let s = Pool.stats p in
      (* the poison task killed quarantine_after workers, each restarted *)
      checki "worker deaths" 2 s.Pool.worker_deaths;
      checki "restarts" 2 s.Pool.restarts;
      checki "quarantined" 1 s.Pool.quarantined;
      checkb "pool still healthy" true (not (Pool.degraded p)))

let test_quarantine_after_one () =
  with_pool
    ~options:{ Pool.default_options with workers = 1; quarantine_after = 1 }
    (fun p ->
      (match Pool.run_one p (fun () -> raise Not_found) with
      | Verdict.Crashed _ -> ()
      | v -> Alcotest.failf "expected crash, got %a" Verdict.pp_verdict v);
      let s = Pool.stats p in
      checki "one death" 1 s.Pool.worker_deaths;
      checki "quarantined immediately" 1 s.Pool.quarantined)

let test_collapse_degrades_to_serial () =
  let events = ref [] in
  with_pool
    ~options:
      {
        Pool.default_options with
        workers = 1;
        quarantine_after = 2;
        max_worker_loss = 1;
      }
    ~log:(fun s -> events := s :: !events)
    (fun p ->
      let out =
        Pool.run p
          (List.init 6 (fun i () ->
               if i < 3 then failwith "killer" else Verdict.Pass))
      in
      checki "every task resolved" 6 (List.length out);
      checkb "well-behaved tasks still pass" true
        (List.exists (( = ) Verdict.Pass) out);
      checkb "killers resolved as crashes" true
        (List.exists (function Verdict.Crashed _ -> true | _ -> false) out);
      checkb "pool degraded" true (Pool.degraded p);
      let s = Pool.stats p in
      checkb "inline serial execution took over" true (s.Pool.inline_runs > 0);
      checkb "degradation logged" true
        (List.exists (fun e -> has_substring ~sub:"degrading" e) !events);
      (* a degraded pool keeps accepting and finishing work *)
      Alcotest.check verdict_t "still serves" Verdict.Pass
        (Pool.run_one p (fun () -> Verdict.Pass)))

(* ------------------------------------------------- Bfs integration *)

let test_bfs_campaign_survives_hung_evaluator () =
  (* acceptance: a deliberately non-terminating evaluator (infinite loop
     OUTSIDE the VM step budget) on one configuration; the supervised
     campaign completes, records a timeout verdict for it, and finishes
     the remaining items *)
  let _, target = Test_harness.synthetic ~n_ops:6 ~poison:[ 1 ] () in
  let hung = Atomic.make false in
  let hostile =
    {
      target with
      Bfs.Target.eval =
        (fun cfg ->
          if not (Atomic.exchange hung true) then hang ()
          else target.Bfs.Target.eval cfg);
    }
  in
  with_pool
    ~options:
      {
        Pool.default_options with
        workers = 2;
        deadline = Some 0.1;
        grace = 0.1;
        poll_interval = 0.005;
      }
    (fun p ->
      let res =
        Bfs.search ~options:{ Bfs.default_options with workers = 2; pool = Some p } hostile
      in
      checkb "campaign completed" true (res.Bfs.tested > 0);
      checkb "timeout verdict in the narration" true
        (List.exists
           (fun l -> has_prefix ~prefix:"TIMEOUT" l)
           res.Bfs.log);
      match res.Bfs.supervisor with
      | None -> Alcotest.fail "supervised campaign must report pool stats"
      | Some s ->
          checkb "abandoned the hung worker" true (s.Pool.abandoned >= 1);
          checkb "rest of the campaign completed" true
            (s.Pool.completed >= res.Bfs.tested - 1))

let test_bfs_transient_pool_classifies_crashes () =
  (* no caller pool: workers > 1 staffs a transient one; a hostile evaluator
     raising arbitrary exceptions yields CRASH verdicts per item, and the
     transient pool is shut down by the search itself *)
  let _, target = Test_harness.synthetic ~n_ops:6 ~poison:[] () in
  let hostile =
    { target with Bfs.Target.eval = (fun _ -> failwith "dead evaluator") }
  in
  let res = Bfs.search ~options:{ Bfs.default_options with workers = 3 } hostile in
  checkb "search completes" true (res.Bfs.tested > 0);
  checki "nothing passes" 0 res.Bfs.static_replaced;
  checkb "crashes classified in the narration" true
    (List.exists (fun l -> has_prefix ~prefix:"CRASH" l) res.Bfs.log);
  (match res.Bfs.supervisor with
  | None -> Alcotest.fail "transient pool must report stats"
  | Some s -> checki "no worker death from a contained crash" 0 s.Pool.worker_deaths)

let test_bfs_oom_and_stack_overflow_are_crash_verdicts () =
  (* satellite: OOM / Stack_overflow from an evaluation surface as Crashed
     verdicts (per-item), not as silent failures or campaign aborts *)
  let _, target = Test_harness.synthetic ~n_ops:4 ~poison:[] () in
  let n = Atomic.make 0 in
  let hostile =
    {
      target with
      Bfs.Target.eval =
        (fun cfg ->
          match Atomic.fetch_and_add n 1 with
          | 0 -> raise Stack_overflow
          | 1 -> raise Out_of_memory
          | _ -> target.Bfs.Target.eval cfg);
    }
  in
  let res = Bfs.search ~options:{ Bfs.default_options with workers = 2 } hostile in
  checkb "campaign completed" true (res.Bfs.tested > 2);
  checki "two crash verdicts" 2
    (List.length
       (List.filter (fun l -> has_prefix ~prefix:"CRASH" l) res.Bfs.log))

let test_strategies_under_pool () =
  let _, target = Test_harness.synthetic ~n_ops:6 ~poison:[ 2 ] () in
  let plain = Strategies.greedy_grow target in
  with_pool ~options:{ Pool.default_options with workers = 2 } (fun p ->
      let pooled = Strategies.greedy_grow ~pool:p target in
      checki "same replacements" plain.Strategies.static_replaced
        pooled.Strategies.static_replaced;
      checki "same test count" plain.Strategies.tested pooled.Strategies.tested;
      checki "every test supervised" pooled.Strategies.tested (Pool.stats p).Pool.tasks)

let suite =
  [
    ("results in submission order", `Quick, test_results_in_submission_order);
    ("one pool serves many waves", `Quick, test_reusable_across_waves);
    ("non-terminating task times out", `Quick, test_nonterminating_task_times_out);
    ("cooperative VM cancel", `Quick, test_cooperative_vm_cancel);
    ("worker death, restart, quarantine", `Quick, test_worker_death_restart_and_quarantine);
    ("quarantine-after-1", `Quick, test_quarantine_after_one);
    ("pool collapse degrades to serial", `Quick, test_collapse_degrades_to_serial);
    ("bfs campaign survives a hung evaluator", `Quick, test_bfs_campaign_survives_hung_evaluator);
    ("bfs transient pool classifies crashes", `Quick, test_bfs_transient_pool_classifies_crashes);
    ( "oom and stack overflow become crash verdicts",
      `Quick,
      test_bfs_oom_and_stack_overflow_are_crash_verdicts );
    ("strategies run under pool supervision", `Quick, test_strategies_under_pool);
  ]
