(* Shadow-value precision analysis: hook composition, tracer soundness,
   prediction/pruning soundness against the real search. *)

let n_slots = 8

(* straight-line kernel with two independent chains:
   - chain A (slots 0/1): constants exactly representable in binary32, so
     its shadow divergence is exactly zero and single precision is exact;
   - chain B (slots 2/3): full-mantissa constants, so every candidate
     flipped to single perturbs the result by ~1e-8. *)
let two_chain_program () =
  let t = Builder.create () in
  let _heap = Builder.alloc_f t n_slots in
  let main =
    Builder.func t ~module_:"kern" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        (* chain A: (1.5 + 2.25) * 2.0 = 7.5, exact in binary32 *)
        let a = Builder.fadd b (Builder.fconst b 1.5) (Builder.fconst b 2.25) in
        let a2 = Builder.fmul b a (Builder.fconst b 2.0) in
        Builder.storef b (Builder.at 0) a2;
        (* chain B: 1/3 * 0.7 + 0.1, every step rounds in binary32 *)
        let c = Builder.fmul b (Builder.fconst b (1.0 /. 3.0)) (Builder.fconst b 0.7) in
        let s = Builder.fadd b c (Builder.fconst b 0.1) in
        Builder.storef b (Builder.at 2) s)
  in
  Builder.program t ~main

(* integer-only control flow + FP arithmetic: the differential oracle *)
let loop_program () =
  let t = Builder.create () in
  let _heap = Builder.alloc_f t n_slots in
  let main =
    Builder.func t ~module_:"kern" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        Builder.for_range b 0 n_slots (fun i ->
            let x = Builder.loadf b (Builder.idx 0 i) in
            let num = Builder.fadd b (Builder.fmul b x x) (Builder.fconst b 1.5) in
            let den = Builder.fadd b (Builder.fabs b x) (Builder.fconst b 2.0) in
            let v = Builder.fdiv b num den in
            let r = Builder.fsqrt b (Builder.fadd b v (Builder.fconst b 0.25)) in
            Builder.storef b (Builder.idx 0 i) r))
  in
  Builder.program t ~main

let loop_input () =
  Array.init n_slots (fun i -> (0.37 *. float_of_int (i + 1)) -. 1.1)

(* --- satellite 1: the hook list ------------------------------------- *)

let test_hook_order () =
  let prog = two_chain_program () in
  let vm = Vm.create prog in
  let order = ref [] in
  let _ = Vm.add_hook vm (fun _ _ -> order := 1 :: !order) in
  let _ = Vm.add_hook vm (fun _ _ -> order := 2 :: !order) in
  let _ = Vm.add_hook vm (fun _ _ -> order := 3 :: !order) in
  Vm.run vm;
  let fired = List.rev !order in
  if fired = [] then Alcotest.fail "hooks never fired";
  if List.length fired mod 3 <> 0 then Alcotest.fail "unbalanced hook firings";
  List.iteri
    (fun i tag ->
      if tag <> (i mod 3) + 1 then
        Alcotest.failf "hooks fired out of installation order at position %d" i)
    fired

let test_hook_removal () =
  let prog = two_chain_program () in
  let vm = Vm.create prog in
  let first = ref 0 and second = ref 0 in
  let id1 = Vm.add_hook vm (fun _ _ -> incr first) in
  let _ = Vm.add_hook vm (fun _ _ -> incr second) in
  Vm.remove_hook vm id1;
  Vm.run vm;
  Alcotest.(check int) "removed hook silent" 0 !first;
  Alcotest.(check bool) "surviving hook fired" true (!second > 0)

(* regression: with the old single-slot hook, attaching the tracer would
   have displaced the armed fault injector and the run would complete *)
let test_faults_and_tracer_stack () =
  let prog = loop_program () in
  let inj =
    Faults.create { Faults.seed = 1; rate = 1.0; modes = [ Faults.Trap ]; transient = false }
  in
  let tracer = Shadow_tracer.create prog in
  let vm = Vm.create prog in
  Vm.write_f vm 0 (loop_input ());
  Faults.arm inj ~key:"shadow-stack" vm;
  let _id = Shadow_tracer.attach tracer vm in
  (match Vm.run vm with
  | () -> Alcotest.fail "expected the injected trap to fire"
  | exception Vm.Trap (_, reason) ->
      Alcotest.(check bool) "trap is the injected one" true
        (String.length reason > 0 && String.sub reason 0 8 = "injected"));
  Alcotest.(check int) "fault fired with tracer installed" 1 (Faults.injected inj)

(* --- satellite 2a: double-configured shadows are exact --------------- *)

let test_double_zero_divergence () =
  for seed = 1 to 12 do
    let prog, input = Test_fuzz.random_program (seed * 7919) in
    let tracer = Shadow_tracer.create ~config:Config.empty prog in
    (try
       ignore
         (Shadow_tracer.trace tracer ~setup:(fun vm -> Vm.write_f vm 0 input) : Vm.t)
     with Vm.Trap _ | Vm.Limit _ -> ());
    Array.iteri
      (fun addr (s : Shadow_tracer.insn_stats) ->
        if s.Shadow_tracer.sum_rel <> 0.0 || s.Shadow_tracer.max_rel <> 0.0 then
          Alcotest.failf "seed %d: double-configured insn 0x%06x diverged (%g)" seed addr
            s.Shadow_tracer.max_rel;
        if s.Shadow_tracer.max_local <> 0.0 then
          Alcotest.failf "seed %d: double-configured insn 0x%06x has local error" seed addr;
        if s.Shadow_tracer.flips <> 0 then
          Alcotest.failf "seed %d: double-configured insn 0x%06x flipped" seed addr)
      (Shadow_tracer.stats tracer)
  done

(* --- satellite 2b: shadow heap == actual converted-single run -------- *)

let test_shadow_matches_converted () =
  let prog = loop_program () in
  let input = loop_input () in
  let tracer = Shadow_tracer.create prog in
  let (_ : Vm.t) = Shadow_tracer.trace tracer ~setup:(fun vm -> Vm.write_f vm 0 input) in
  let shadow = Shadow_tracer.shadow_heap tracer in
  let vm = Vm.create ~smode:Vm.Plain (To_single.convert prog) in
  Vm.write_f vm 0 input;
  Vm.run vm;
  let actual = Vm.read_f vm 0 n_slots in
  Array.iteri
    (fun i a ->
      let s = shadow.(i) in
      if not (Int64.equal (Int64.bits_of_float s) (Int64.bits_of_float a)) then
        Alcotest.failf "slot %d: shadow %.17g <> converted-single %.17g" i s a)
    actual;
  Alcotest.(check bool) "tracer observed values" true (Shadow_tracer.observations tracer > 0)

(* --- satellite 2c: pruning never skips a passing configuration ------- *)

let two_chain_target prog =
  let native = Vm.create prog in
  Vm.run native;
  let expect = Vm.read_f native 0 n_slots in
  Bfs.Target.make prog
    ~setup:(fun _ -> ())
    ~output:(fun vm -> Vm.read_f vm 0 n_slots)
    ~verify:(fun out ->
      Float.abs (out.(0) -. expect.(0)) <= 0.5
      && Float.abs (out.(2) -. expect.(2)) <= 1e-12)

let test_prune_soundness () =
  let prog = two_chain_program () in
  let target = two_chain_target prog in
  let plain = Bfs.search target in
  let tracer = Shadow_tracer.create prog in
  let (_ : Vm.t) = Shadow_tracer.trace tracer ~setup:(fun _ -> ()) in
  let report = Shadow_report.make ~threshold:1e-12 prog tracer in
  let pruned_cfgs = ref [] in
  let guided =
    Bfs.search
      ~options:
        {
          Bfs.default_options with
          shadow =
            Some
              (Bfs.shadow ~prune_above:1e-10
                 ~on_pruned:(fun cfg div -> pruned_cfgs := (cfg, div) :: !pruned_cfgs)
                 report);
        }
      target
  in
  Alcotest.(check bool) "pruning exercised" true (guided.Bfs.pruned > 0);
  Alcotest.(check int) "callback saw every prune" guided.Bfs.pruned
    (List.length !pruned_cfgs);
  (* soundness: nothing plain BFS would accept was pruned *)
  List.iter
    (fun (cfg, div) ->
      if target.Bfs.Target.eval cfg then
        Alcotest.failf "pruned a passing configuration (predicted divergence %g)" div)
    !pruned_cfgs;
  Alcotest.(check bool) "plain final passes" true plain.Bfs.final_pass;
  Alcotest.(check bool) "guided final passes" true guided.Bfs.final_pass;
  Alcotest.(check int) "same static replacement" plain.Bfs.static_replaced
    guided.Bfs.static_replaced;
  Alcotest.(check bool) "guided evaluates strictly less" true
    (guided.Bfs.tested < plain.Bfs.tested)

(* --- verdict plumbing ------------------------------------------------ *)

let test_pruned_verdict_roundtrip () =
  let v = Verdict.Pruned "shadow predicted divergence 3.2e-02" in
  Alcotest.(check string) "label" "pruned" (Verdict.verdict_label v);
  Alcotest.(check bool) "not flaky" false (Verdict.is_flaky v);
  (match Verdict.verdict_of_string (Verdict.verdict_to_string v) with
  | Some (Verdict.Pruned r) ->
      Alcotest.(check string) "reason survives" "shadow predicted divergence 3.2e-02" r
  | _ -> Alcotest.fail "Pruned did not round-trip");
  match Verdict.verdict_of_string (Verdict.verdict_to_string (Verdict.Pruned "a:b,c d")) with
  | Some (Verdict.Pruned r) -> Alcotest.(check string) "reserved chars survive" "a:b,c d" r
  | _ -> Alcotest.fail "Pruned with reserved characters did not round-trip"

let suite =
  [
    ("hooks fire in installation order", `Quick, test_hook_order);
    ("remove_hook silences exactly that hook", `Quick, test_hook_removal);
    ("fault injector and tracer stack", `Quick, test_faults_and_tracer_stack);
    ("double-configured shadow: zero divergence", `Quick, test_double_zero_divergence);
    ("shadow heap matches converted-single run", `Quick, test_shadow_matches_converted);
    ("pruning never skips a passing configuration", `Quick, test_prune_soundness);
    ("Pruned verdict round-trips", `Quick, test_pruned_verdict_roundtrip);
  ]
