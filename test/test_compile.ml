(* Differential tests for the closure-compiling backend: Compile.run must
   be bit-identical to Vm.run — heaps, counts, bcounts, step totals and
   trap/Limit classification — on every kernel and on random programs,
   across smode × checked × mixed precision configurations; hooks of any
   kind must force the interpreter fallback; and a Compiled-backend pool
   run must still cancel cooperatively under a wall-clock deadline. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------------------------------------------------- differential driver *)

type outcome = Finished | Trapped of int * string | Limited of int

let outcome_str = function
  | Finished -> "finished"
  | Trapped (a, r) -> Printf.sprintf "trap@%d: %s" a r
  | Limited n -> Printf.sprintf "limit %d" n

let run_with runner ?(checked = true) ?(smode = Vm.Flagged) ?max_steps ~setup prog =
  let vm = Vm.create ~checked ~smode ?max_steps prog in
  setup vm;
  let out =
    match runner vm with
    | () -> Finished
    | exception Vm.Trap (a, r) -> Trapped (a, r)
    | exception Vm.Limit n -> Limited n
  in
  (out, vm)

let float_bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun u v -> Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v)) a b

let diff_state label (oi, (vi : Vm.t)) (oc, (vc : Vm.t)) =
  if oi <> oc then
    Alcotest.failf "%s: outcome differs (interp %s, compiled %s)" label (outcome_str oi)
      (outcome_str oc);
  if not (float_bits_equal vi.Vm.fheap vc.Vm.fheap) then
    Alcotest.failf "%s: float heaps differ" label;
  if vi.Vm.iheap <> vc.Vm.iheap then Alcotest.failf "%s: int heaps differ" label;
  if vi.Vm.counts <> vc.Vm.counts then Alcotest.failf "%s: instruction counts differ" label;
  if vi.Vm.bcounts <> vc.Vm.bcounts then Alcotest.failf "%s: block counts differ" label;
  if vi.Vm.steps <> vc.Vm.steps then
    Alcotest.failf "%s: step totals differ (interp %d, compiled %d)" label vi.Vm.steps
      vc.Vm.steps

let differential ?checked ?smode ?max_steps ~setup label prog =
  let i = run_with Vm.run ?checked ?smode ?max_steps ~setup prog in
  let c = run_with (fun vm -> Compile.run vm) ?checked ?smode ?max_steps ~setup prog in
  diff_state label i c

(* ------------------------------------------------------------ kernel suite *)

let all_w () =
  [
    Nas_ep.make Kernel.W;
    Nas_cg.make Kernel.W;
    Nas_ft.make Kernel.W;
    Nas_mg.make Kernel.W;
    Nas_bt.make Kernel.W;
    Nas_lu.make Kernel.W;
    Nas_sp.make Kernel.W;
  ]

let all_single_cfg prog =
  Array.fold_left
    (fun acc (info : Static.insn_info) -> Config.set_insn acc info.Static.addr Config.Single)
    Config.empty (Static.candidates prog)

let random_cfg rng prog =
  Array.fold_left
    (fun acc (info : Static.insn_info) ->
      match Rng.int rng 3 with
      | 0 -> Config.set_insn acc info.Static.addr Config.Single
      | _ -> acc)
    Config.empty (Static.candidates prog)

let test_kernels_differential () =
  List.iter
    (fun (k : Kernel.t) ->
      let rng = Rng.create 20240806 in
      let configs =
        [ ("empty", Config.empty); ("hints", k.hints); ("all-single", all_single_cfg k.program) ]
        @ List.init 2 (fun i ->
              (Printf.sprintf "mixed-%d" i, random_cfg rng k.program))
      in
      List.iter
        (fun (cname, cfg) ->
          let patched = Patcher.patch k.program cfg in
          differential ~checked:true ~setup:k.setup
            (Printf.sprintf "%s/%s" k.name cname)
            patched)
        configs)
    (all_w ())

let test_kernels_native_differential () =
  List.iter
    (fun (k : Kernel.t) ->
      differential ~checked:false ~setup:k.setup (k.name ^ "/native") k.program)
    (all_w ())

let test_kernels_plain_differential () =
  List.iter
    (fun (k : Kernel.t) ->
      let conv = To_single.convert k.program in
      differential ~checked:true ~smode:Vm.Plain ~setup:k.setup (k.name ^ "/plain-checked")
        conv;
      differential ~checked:false ~smode:Vm.Plain ~setup:k.setup
        (k.name ^ "/plain-unchecked") conv)
    (all_w ())

(* --------------------------------------------------------- trap equivalence *)

let at off = { Ir.base = None; index = None; scale = 0; offset = off }

let mk_prog ?(n_fregs = 4) ?(n_iregs = 4) ?(fheap = 4) ?(iheap = 4) ops =
  let instrs = Array.of_list (List.mapi (fun i op -> { Ir.addr = i; op }) ops) in
  let f =
    {
      Ir.fid = 0;
      fname = "main";
      module_name = "m";
      n_fargs = 0;
      n_iargs = 0;
      ret_fregs = [||];
      ret_iregs = [||];
      n_fregs;
      n_iregs;
      entry = 0;
      blocks = [| { Ir.label = 0; instrs; term = Ir.Ret } |];
    }
  in
  { Ir.funcs = [| f |]; main = 0; fheap_size = fheap; iheap_size = iheap; modules = [| "m" |] }

let no_setup (_ : Vm.t) = ()

let test_trap_equivalence () =
  let cases =
    [
      (* runtime out-of-bounds float load *)
      ("oob-load", mk_prog [ Ir.Iconst (0, 10); Ir.Fload (0, at 0) ], false);
      ( "oob-load-indexed",
        mk_prog
          [
            Ir.Iconst (0, 3);
            Ir.Fload (1, { Ir.base = Some 0; index = Some 0; scale = 2; offset = 0 });
          ],
        false );
      (* compile-time-constant out-of-bounds store *)
      ("oob-store-const", mk_prog [ Ir.Fconst (Ir.D, 0, 1.0); Ir.Fstore (at 9, 0) ], false);
      ("div-zero", mk_prog [ Ir.Iconst (0, 5); Ir.Iconst (1, 0); Ir.Ibin (Ir.Idiv, 2, 0, 1) ], false);
      ("rem-zero", mk_prog [ Ir.Iconst (0, 5); Ir.Iconst (1, 0); Ir.Ibin (Ir.Irem, 2, 0, 1) ], false);
      (* checked-mode instrumentation invariants *)
      ("upcast-unreplaced", mk_prog [ Ir.Fconst (Ir.D, 0, 1.0); Ir.Fupcast (1, 0) ], true);
      ( "s-op-unreplaced",
        mk_prog [ Ir.Fconst (Ir.D, 0, 1.0); Ir.Fbin (Ir.S, Ir.Add, 1, 0, 0) ],
        true );
      ( "d-op-replaced",
        mk_prog [ Ir.Fconst (Ir.D, 0, 1.0); Ir.Fdowncast (1, 0); Ir.Fbin (Ir.D, Ir.Add, 2, 1, 1) ],
        true );
    ]
  in
  List.iter
    (fun (name, prog, checked) -> differential ~checked ~setup:no_setup name prog)
    cases

(* overlapping packed register windows: lane 1 must read its operands
   before lane 0's result lands (the Fbinp lane-overlap fix) *)
let test_fbinp_overlap () =
  (* d = a + 1 with a = b = 0: lanes (f1, f2) <- (f0, f1) + (f0, f1).
     Element-wise semantics give (4, 6); the old write-then-read order fed
     lane 0's result 4 into lane 1 and produced 8. *)
  let prog =
    mk_prog
      [
        Ir.Fconst (Ir.D, 0, 2.0);
        Ir.Fconst (Ir.D, 1, 3.0);
        Ir.Fbinp (Ir.D, Ir.Add, 1, 0, 0);
        Ir.Fstore (at 0, 1);
        Ir.Fstore (at 1, 2);
      ]
  in
  List.iter
    (fun (name, runner) ->
      let _, vm = run_with runner ~checked:false ~setup:no_setup prog in
      Alcotest.(check (float 0.0)) (name ^ ": lane 0") 4.0 (Vm.get_f vm 0);
      Alcotest.(check (float 0.0)) (name ^ ": lane 1") 6.0 (Vm.get_f vm 1))
    [ ("interp", Vm.run); ("compiled", fun vm -> Compile.run vm) ];
  (* and the packed S path through the same window *)
  let prog_s =
    mk_prog
      [
        Ir.Fconst (Ir.S, 0, 2.0);
        Ir.Fconst (Ir.S, 1, 3.0);
        Ir.Fbinp (Ir.S, Ir.Add, 1, 0, 0);
        Ir.Fstore (at 0, 1);
        Ir.Fstore (at 1, 2);
      ]
  in
  differential ~checked:true ~setup:no_setup "fbinp-overlap-single" prog_s;
  let _, vm = run_with Vm.run ~checked:true ~setup:no_setup prog_s in
  Alcotest.(check (float 0.0)) "S lane 1 element-wise" 6.0 (Replaced.coerce (Vm.get_f vm 1))

(* ------------------------------------------------------- fuzz differential *)

let fuzz_setup input vm = Vm.write_f vm 0 input

let test_fuzz_differential () =
  for seed = 1 to 25 do
    let prog, input = Test_fuzz.random_program (seed * 7919) in
    let rng = Rng.create (seed + 31337) in
    differential ~checked:false ~setup:(fuzz_setup input)
      (Printf.sprintf "fuzz %d native" seed)
      prog;
    for v = 1 to 2 do
      let cfg = random_cfg rng prog in
      let patched = Patcher.patch prog cfg in
      differential ~checked:true ~setup:(fuzz_setup input)
        (Printf.sprintf "fuzz %d cfg %d" seed v)
        patched
    done
  done

let test_limit_equivalence () =
  for seed = 1 to 10 do
    let prog, input = Test_fuzz.random_program (seed * 131) in
    let patched = Patcher.patch prog (all_single_cfg prog) in
    List.iter
      (fun budget ->
        differential ~checked:true ~max_steps:budget ~setup:(fuzz_setup input)
          (Printf.sprintf "fuzz %d limit %d" seed budget)
          patched)
      [ 7; 100; 1000 ]
  done

let qcheck_differential =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40 ~name:"compiled = interp on random programs"
       QCheck2.Gen.(int_range 1 10_000)
       (fun seed ->
         let prog, input = Test_fuzz.random_program ((seed * 37) + 11) in
         let cfg = random_cfg (Rng.create (seed + 1)) prog in
         let patched = Patcher.patch prog cfg in
         let i = run_with Vm.run ~checked:true ~setup:(fuzz_setup input) patched in
         let c =
           run_with (fun vm -> Compile.run vm) ~checked:true ~setup:(fuzz_setup input) patched
         in
         diff_state (Printf.sprintf "qcheck seed %d" seed) i c;
         true))

(* ------------------------------------------------------------- code cache *)

let n_blocks (p : Ir.program) =
  Array.fold_left (fun acc (f : Ir.func) -> acc + Array.length f.Ir.blocks) 0 p.Ir.funcs

let test_cache_reuse () =
  let prog, input = Test_fuzz.random_program 4242 in
  let p1 = Patcher.patch prog Config.empty in
  let n = n_blocks p1 in
  let cache = Compile.create_cache () in
  let run p =
    let vm = Vm.create ~checked:true p in
    fuzz_setup input vm;
    match Compile.run ~cache vm with () -> () | exception Vm.Trap _ -> ()
  in
  run p1;
  let s1 = Compile.stats cache in
  checki "first run misses every block" n s1.Code_cache.misses;
  checki "first run hits nothing" 0 s1.Code_cache.hits;
  run p1;
  let s2 = Compile.stats cache in
  checki "identical rerun hits every block" n s2.Code_cache.hits;
  checki "identical rerun compiles nothing" n s2.Code_cache.misses;
  (* flip only the helper function: the patched layout is config-invariant,
     so every block outside the helper must still hit *)
  let helper_cfg =
    Array.fold_left
      (fun acc (info : Static.insn_info) ->
        if info.Static.fname = "helper" then Config.set_insn acc info.Static.addr Config.Single
        else acc)
      Config.empty (Static.candidates prog)
  in
  let p2 = Patcher.patch prog helper_cfg in
  checki "layout invariant under the flip" n (n_blocks p2);
  let helper_blocks =
    Array.fold_left
      (fun acc (f : Ir.func) ->
        if f.Ir.fname = "helper" then acc + Array.length f.Ir.blocks else acc)
      0 p2.Ir.funcs
  in
  run p2;
  let s3 = Compile.stats cache in
  let new_misses = s3.Code_cache.misses - s2.Code_cache.misses in
  checkb "one-function flip recompiles at most that function's blocks" true
    (new_misses <= helper_blocks && new_misses > 0);
  checki "everything else hits" (s2.Code_cache.hits + (n - new_misses)) s3.Code_cache.hits;
  checkb "hit rate above one half across the mini-campaign" true
    (Code_cache.hit_rate s3 > 0.5)

(* -------------------------------------------------------- hook fallbacks *)

let test_hook_forces_interpreter () =
  let prog, input = Test_fuzz.random_program 999 in
  let patched = Patcher.patch prog (all_single_cfg prog) in
  (* reference: pure interpreter *)
  let ri = run_with Vm.run ~checked:true ~setup:(fuzz_setup input) patched in
  (* a test probe hook: Compile.run must route through the interpreter,
     which is the only engine that fires hooks *)
  let fired = ref 0 in
  let setup vm =
    fuzz_setup input vm;
    ignore (Vm.add_hook vm (fun _ _ -> incr fired))
  in
  let rc = run_with (fun vm -> Compile.run vm) ~checked:true ~setup patched in
  checkb "hook fired under the compiled backend" true (!fired > 0);
  diff_state "hooked compiled run = interp" ri rc

let test_shadow_tracer_forces_interpreter () =
  let prog, input = Test_fuzz.random_program 1234 in
  let tracer = Shadow_tracer.create prog in
  let vm = Vm.create prog in
  fuzz_setup input vm;
  ignore (Shadow_tracer.attach tracer vm);
  (match Compile.run vm with () -> () | exception Vm.Trap _ -> ());
  checkb "tracer observed instructions under the compiled backend" true
    (Shadow_tracer.observations tracer > 0)

let test_faults_force_interpreter () =
  let prog, input = Test_fuzz.random_program 777 in
  let inj =
    Faults.create { Faults.seed = 3; rate = 1.0; modes = [ Faults.Trap ]; transient = false }
  in
  let target =
    Bfs.Target.make ~faults:inj ~backend:Compile.Compiled prog
      ~setup:(fuzz_setup input)
      ~output:(fun vm -> Vm.read_f vm 0 Test_fuzz.n_slots)
      ~verify:(fun _ -> true)
  in
  checkb "always-faulting evaluation fails" false (target.Bfs.Target.eval Config.empty);
  checkb "the injector actually fired" true (Faults.injected inj > 0)

(* --------------------------------------- campaign equivalence + deadlines *)

let fuzz_target ~backend prog input =
  let reference =
    let vm = Vm.create prog in
    fuzz_setup input vm;
    Vm.run vm;
    Vm.read_f vm 0 Test_fuzz.n_slots
  in
  Bfs.Target.make ~backend prog ~setup:(fuzz_setup input)
    ~output:(fun vm -> Vm.read_f vm 0 Test_fuzz.n_slots)
    ~verify:(fun out ->
      Array.for_all2
        (fun a b ->
          let scale = Float.max 1.0 (Float.abs b) in
          Float.abs (a -. b) /. scale < 1e-4)
        out reference)

let test_campaign_equivalence () =
  let prog, input = Test_fuzz.random_program 31415 in
  let search backend =
    Bfs.search (fuzz_target ~backend prog input)
  in
  let ri = search Compile.Interp and rc = search Compile.Compiled in
  checkb "final configurations identical" true (compare ri.Bfs.final rc.Bfs.final = 0);
  checki "same number of evaluations" ri.Bfs.tested rc.Bfs.tested;
  checkb "same final verdict" true (ri.Bfs.final_pass = rc.Bfs.final_pass)

let test_compiled_pool_deadline () =
  (* a compiled evaluation that runs far past the wall-clock deadline must
     still be cancelled cooperatively: the pool's watchdog heartbeats per
     block in compiled code and raises Vm.Deadline on the worker *)
  let t = Builder.create () in
  let cell = Builder.alloc_f t 1 in
  let main =
    Builder.func t ~module_:"spin" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        Builder.for_range b 0 50_000_000 (fun _ ->
            let v = Builder.loadf b (Builder.at cell) in
            Builder.storef b (Builder.at cell) (Builder.fadd b v v)))
  in
  let prog = Builder.program t ~main in
  let p =
    Pool.create
      ~options:
        {
          Pool.default_options with
          workers = 1;
          deadline = Some 0.05;
          grace = 30.0 (* far away: only the cooperative tier may fire *);
          poll_interval = 0.005;
        }
      ()
  in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let v =
        Pool.run_one p (fun () ->
            Verdict.classify (fun () ->
                let vm = Vm.create prog in
                Compile.run vm;
                true))
      in
      Alcotest.check Alcotest.string "cancelled cooperatively"
        (Verdict.verdict_label Verdict.Step_timeout)
        (Verdict.verdict_label v);
      let s = Pool.stats p in
      checkb "deadline miss recorded" true (s.Pool.deadline_misses >= 1);
      checki "never abandoned" 0 s.Pool.abandoned)

let suite =
  [
    ("kernels: compiled = interp (patched, mixed configs)", `Quick, test_kernels_differential);
    ("kernels: compiled = interp (native)", `Quick, test_kernels_native_differential);
    ("kernels: compiled = interp (plain single)", `Quick, test_kernels_plain_differential);
    ("traps classify identically", `Quick, test_trap_equivalence);
    ("packed lanes read before writes (overlap fix)", `Quick, test_fbinp_overlap);
    ("fuzz: compiled = interp", `Quick, test_fuzz_differential);
    ("fuzz: Limit fires identically", `Quick, test_limit_equivalence);
    qcheck_differential;
    ("code cache: reuse across configurations", `Quick, test_cache_reuse);
    ("hooks force the interpreter", `Quick, test_hook_forces_interpreter);
    ("shadow tracer forces the interpreter", `Quick, test_shadow_tracer_forces_interpreter);
    ("fault injector forces the interpreter", `Quick, test_faults_force_interpreter);
    ("BFS campaign identical across backends", `Quick, test_campaign_equivalence);
    ("compiled pool run honours the deadline", `Quick, test_compiled_pool_deadline);
  ]
