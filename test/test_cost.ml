(* Tests for the cost model and the MPI rank-scaling model. *)

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)

let test_op_cycles_ordering () =
  let p = Cost.default in
  let c op = Cost.op_cycles p op in
  checkb "div costlier than add" true (c (Fbin (D, Div, 0, 1, 2)) > c (Fbin (D, Add, 0, 1, 2)));
  checkb "single div cheaper" true (c (Fbin (S, Div, 0, 1, 2)) < c (Fbin (D, Div, 0, 1, 2)));
  checkb "single sqrt cheaper" true (c (Funop (S, Sqrt, 0, 1)) < c (Funop (D, Sqrt, 0, 1)));
  checkb "single libm cheaper" true (c (Flibm (S, Exp, 0, 1)) < c (Flibm (D, Exp, 0, 1)));
  checkb "testflag priced" true (c (Ftestflag (0, 0)) > 0.0);
  checkb "int op cheap" true (c (Iconst (0, 1)) <= c (Fbin (D, Add, 0, 1, 2)))

let small_kernel () =
  let t = Builder.create () in
  let x = Builder.alloc_f t 64 in
  let y = Builder.alloc_f t 64 in
  let main =
    Builder.func t ~module_:"k" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let c = Builder.fconst b 1.0001 in
        Builder.for_range b 0 64 (fun i ->
            let v = Builder.loadf b (Builder.idx x i) in
            Builder.storef b (Builder.idx y i) (Builder.fdiv b (Builder.fmul b v c) c)))
  in
  Builder.program t ~main

let run prog =
  let vm = Vm.create prog in
  Vm.run vm;
  vm

let test_of_run_consistency () =
  let prog = small_kernel () in
  let vm = run prog in
  let rc = Cost.of_run vm in
  checkb "cycles positive" true (rc.Cost.cycles > 0.0);
  checkb "bytes positive" true (rc.Cost.mem_bytes > 0.0);
  checkb "roofline" true
    (rc.Cost.time_cycles >= rc.Cost.cycles
    || rc.Cost.time_cycles >= rc.Cost.mem_bytes /. Cost.default.Cost.bandwidth);
  checkf "roofline is max"
    (Float.max rc.Cost.cycles (rc.Cost.mem_bytes /. Cost.default.Cost.bandwidth))
    rc.Cost.time_cycles;
  checkb "fp ops counted" true (rc.Cost.fp_ops >= 64 * 2);
  checkb "seconds consistent" true
    (Float.abs (rc.Cost.seconds -. (rc.Cost.time_cycles /. (Cost.default.Cost.clock_ghz *. 1e9)))
    < 1e-12)

let test_instrumented_costs_more () =
  let prog = small_kernel () in
  let nat = Cost.of_run (run prog) in
  let patched = Patcher.patch prog Config.empty in
  let vm = Vm.create ~checked:true patched in
  Vm.run vm;
  let ins = Cost.of_run vm in
  checkb "overhead > 1" true (Cost.overhead ins nat > 1.0)

let test_fmem_bytes_override () =
  let prog = small_kernel () in
  let vm = run prog in
  let full = Cost.of_run vm in
  let half = Cost.of_run ~fmem_bytes:4.0 vm in
  checkb "half traffic" true (half.Cost.mem_bytes < full.Cost.mem_bytes)

let test_mflops () =
  let prog = small_kernel () in
  let rc = Cost.of_run (run prog) in
  checkb "mflops positive" true (Cost.mflops rc > 0.0)

let test_allreduce () =
  let net = Mpi_model.default_net in
  checkf "1 rank free" 0.0 (Mpi_model.allreduce net ~ranks:1 ~bytes:1e6);
  let c2 = Mpi_model.allreduce net ~ranks:2 ~bytes:100.0 in
  let c8 = Mpi_model.allreduce net ~ranks:8 ~bytes:100.0 in
  checkb "log scaling" true (c8 > c2 && c8 < 4.0 *. c2)

let test_alltoall () =
  let net = Mpi_model.default_net in
  checkf "1 rank free" 0.0 (Mpi_model.alltoall net ~ranks:1 ~bytes_total:1e6);
  let c2 = Mpi_model.alltoall net ~ranks:2 ~bytes_total:1e6 in
  let c8 = Mpi_model.alltoall net ~ranks:8 ~bytes_total:1e6 in
  checkb "more ranks, more movement" true (c8 > c2)

let test_halo () =
  let net = Mpi_model.default_net in
  checkf "1 rank free" 0.0 (Mpi_model.halo net ~ranks:1 ~bytes_boundary:1e3);
  checkb "positive" true (Mpi_model.halo net ~ranks:4 ~bytes_boundary:1e3 > 0.0)

let test_overhead_dilution () =
  (* with communication in the denominator, instrumentation overhead shrinks
     as ranks grow — the Fig. 8 trend *)
  let comp = 1e9 in
  let comp_i = 8e9 in
  let comm n = if n <= 1 then 0.0 else 2e8 in
  let o1 = Mpi_model.overhead_at ~comp_native:comp ~comp_instr:comp_i ~comm 1 in
  let o4 = Mpi_model.overhead_at ~comp_native:comp ~comp_instr:comp_i ~comm 4 in
  let o8 = Mpi_model.overhead_at ~comp_native:comp ~comp_instr:comp_i ~comm 8 in
  checkf "single rank is the pure ratio" 8.0 o1;
  checkb "decreasing" true (o1 > o4 && o4 > o8);
  checkb "above one" true (o8 > 1.0)

let test_overhead_flat_without_comm () =
  let comm _ = 0.0 in
  let o1 = Mpi_model.overhead_at ~comp_native:1e9 ~comp_instr:5e9 ~comm 1 in
  let o8 = Mpi_model.overhead_at ~comp_native:1e9 ~comp_instr:5e9 ~comm 8 in
  checkf "flat" o1 o8

let suite =
  [
    ("op cycle ordering", `Quick, test_op_cycles_ordering);
    ("of_run consistency", `Quick, test_of_run_consistency);
    ("instrumented costs more", `Quick, test_instrumented_costs_more);
    ("fmem override", `Quick, test_fmem_bytes_override);
    ("mflops", `Quick, test_mflops);
    ("allreduce", `Quick, test_allreduce);
    ("alltoall", `Quick, test_alltoall);
    ("halo", `Quick, test_halo);
    ("overhead dilution with ranks", `Quick, test_overhead_dilution);
    ("overhead flat without comm", `Quick, test_overhead_flat_without_comm);
  ]
