(* Crash-safety of the daemon's durable state: the on-disk result store
   (replay, truncation/garbage tolerance, compaction), the job-table WAL
   (property: replay reconstructs the exact job table), the state-dir
   lockfile, scheduler recovery across an in-process "daemon death", and
   the real thing — the CLI daemon SIGKILLed mid-campaign and restarted on
   the same state dir, asserting a byte-identical final configuration with
   strictly fewer evaluations on the second leg. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains s sub =
  let n = String.length sub in
  let rec go i =
    if i + n > String.length s then false else String.sub s i n = sub || go (i + 1)
  in
  go 0

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rm_rf dir = ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ store *)

let test_store_durable_roundtrip () =
  let dir = temp_dir "craft_store" in
  let path = Filename.concat dir "store.log" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () ->
      let store = Store.create ~path ~fsync_every:1 () in
      let verdicts =
        [
          ("a/steps=default/d1", Verdict.Pass);
          ("a/steps=default/d2", Verdict.Fail_verify);
          ("a/steps=default/d3", Verdict.Trapped (0x1f, "injected fault"));
          ("b/steps=100/d1", Verdict.Step_timeout);
          ("b/steps=100/d2", Verdict.Crashed "boom with spaces");
          ("b/steps=100/d3", Verdict.Pruned "shadow said so");
        ]
      in
      List.iter
        (fun (key, v) -> ignore (Store.find_or_compute store ~key (fun () -> v)))
        verdicts;
      Store.close store;
      (* a second daemon life on the same path serves every verdict *)
      let store2 = Store.create ~path () in
      checki "replayed all" (List.length verdicts) (Store.stats store2).Store.replayed;
      List.iter
        (fun (key, v) ->
          let got, served =
            Store.find_or_compute store2 ~key (fun () -> Alcotest.fail "recomputed")
          in
          checkb "served from replay" true served;
          checkb "verdict survives the round-trip" true (got = v))
        verdicts;
      Store.close store2)

let test_store_closed_keeps_serving () =
  let dir = temp_dir "craft_store" in
  let path = Filename.concat dir "store.log" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () ->
      let store = Store.create ~path () in
      ignore (Store.find_or_compute store ~key:"k" (fun () -> Verdict.Pass));
      Store.close store;
      Store.close store;
      (* memory table still serves; fresh verdicts just stop persisting *)
      let _, served = Store.find_or_compute store ~key:"k" (fun () -> Verdict.Pass) in
      checkb "served after close" true served;
      ignore (Store.find_or_compute store ~key:"k2" (fun () -> Verdict.Pass));
      checki "k2 not persisted" 1 (List.length (Store.scan ~path)))

(* Random store contents for the fuzz tests. *)
let verdict_gen =
  let open QCheck2.Gen in
  oneof
    [
      return Verdict.Pass;
      return Verdict.Fail_verify;
      map (fun s -> Verdict.Crashed s) (small_string ~gen:printable);
      map (fun s -> Verdict.Pruned s) (small_string ~gen:printable);
      map2 (fun a s -> Verdict.Trapped (a land 0xffffff, s)) small_nat
        (small_string ~gen:printable);
      return Verdict.Step_timeout;
    ]

let entries_gen =
  let open QCheck2.Gen in
  let key_gen =
    map
      (fun (a, b, c) -> Printf.sprintf "%08x/steps=%d/%08x" a b c)
      (triple nat small_nat nat)
  in
  map
    (fun l ->
      (* distinct keys: the store never appends one key twice *)
      let seen = Hashtbl.create 16 in
      List.filter
        (fun (k, _) ->
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        l)
    (small_list (pair key_gen verdict_gen))

let write_store_log path entries =
  let store = Store.create ~path ~fsync_every:0 () in
  List.iter (fun (key, v) -> ignore (Store.find_or_compute store ~key (fun () -> v))) entries;
  Store.close store

let fuzz_store_truncation =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"store log: any truncation replays a prefix"
       QCheck2.Gen.(pair entries_gen (int_range 0 10_000))
       (fun (entries, cut) ->
         let dir = temp_dir "craft_fuzz" in
         let path = Filename.concat dir "store.log" in
         Fun.protect ~finally:(fun () -> rm_rf dir) (fun () ->
             write_store_log path entries;
             let full = read_file path in
             let cut = min cut (String.length full) in
             write_file path (String.sub full 0 cut);
             let replayed = Store.scan ~path in
             (* tolerant prefix: every replayed record is one we wrote, in
                order, and only the boundary record may be lost *)
             let rec is_prefix got want =
               match (got, want) with
               | [], _ -> true
               | g :: gs, w :: ws -> g = w && is_prefix gs ws
               | _ :: _, [] -> false
             in
             if not (is_prefix replayed entries) then
               QCheck2.Test.fail_reportf "replay is not a prefix after cut at %d" cut;
             (* intact lines all survive: count newlines in the kept bytes
                past the header *)
             let lines = String.split_on_char '\n' (String.sub full 0 cut) in
             let intact = max 0 (List.length lines - 2) in
             if List.length replayed < intact then
               QCheck2.Test.fail_reportf "lost %d intact record(s)"
                 (intact - List.length replayed);
             true)))

let fuzz_store_garbage =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"store log: mid-file garbage lines drop without losing records"
       QCheck2.Gen.(triple entries_gen (small_string ~gen:printable) small_nat)
       (fun (entries, garbage, at) ->
         let dir = temp_dir "craft_fuzz" in
         let path = Filename.concat dir "store.log" in
         Fun.protect ~finally:(fun () -> rm_rf dir) (fun () ->
             write_store_log path entries;
             let lines = String.split_on_char '\n' (read_file path) in
             let at = at mod List.length lines in
             (* the "%zz" key field can never unescape, so whatever the
                random payload is, this line is garbage to the loader *)
             let spliced =
               List.concat
                 (List.mapi
                    (fun i l -> if i = at then [ "%zz " ^ garbage; l ] else [ l ])
                    lines)
             in
             write_file path (String.concat "\n" spliced);
             let replayed = Store.scan ~path in
             if replayed <> entries then
               QCheck2.Test.fail_reportf "garbage line changed the replay (%d vs %d)"
                 (List.length replayed) (List.length entries);
             true)))

let test_store_compact () =
  let dir = temp_dir "craft_store" in
  let path = Filename.concat dir "store.log" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () ->
      write_store_log path [ ("k1", Verdict.Pass); ("k2", Verdict.Fail_verify) ];
      (* simulate many daemon lifetimes re-deciding k1: raw duplicate
         appends, which replay (and so compaction) resolve last-wins *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "k1 fail 3\nk1 pass 4\nhalf-a-rec";
      close_out oc;
      (match Store.compact ~path with
      | Ok (kept, dropped) ->
          checki "kept distinct" 2 kept;
          (* the torn tail never parses as a record, so only the two
             duplicate appends count as dropped *)
          checki "dropped duplicates" 2 dropped
      | Error why -> Alcotest.fail why);
      let records = Store.scan ~path in
      checki "two records" 2 (List.length records);
      checkb "last verdict won" true (List.assoc "k1" records = Verdict.Pass);
      (match Store.compact ~path:(Filename.concat dir "nope") with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "compacted a missing file"))

(* -------------------------------------------------------------------- wal *)

let spec_gen =
  let open QCheck2.Gen in
  (* non-empty: an empty bench/cls escapes to an empty field, which the
     space-split line format cannot carry (and [submit] never sends) *)
  let word = string_size ~gen:printable (int_range 1 8) in
  (* the formats menu and strategy token round-trip through the same
     escaped-token slots; "" must survive as "" (it serializes as "-") *)
  let menu = oneofl [ ""; "bf16,single"; "f16"; "e5m10,e8m7,single" ] in
  let strat = oneofl [ ""; "bfs"; "split"; "delta"; "anneal:42" ] in
  map
    (fun ((bench, cls), (shadow, priority, steps), (formats, strategy)) ->
      { Wire.bench; cls; shadow; priority; eval_steps = steps; formats; strategy })
    (triple (pair word word)
       (triple bool (int_range (-5) 5) (option small_nat))
       (pair menu strat))

let outcome_gen =
  let open QCheck2.Gen in
  let why = small_string ~gen:printable in
  oneof
    [
      return (Wire.Done, "tested 45, final pass");
      return (Wire.Cancelled, "");
      map (fun w -> (Wire.Failed w, "failed run")) why;
      map (fun w -> (Wire.Quarantined w, "")) why;
    ]

let fuzz_wal_replay =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"wal: replay reconstructs the exact job table"
       QCheck2.Gen.(small_list (pair spec_gen (option outcome_gen)))
       (fun jobs ->
         let dir = temp_dir "craft_wal" in
         let path = Filename.concat dir "jobs.wal" in
         Fun.protect ~finally:(fun () -> rm_rf dir) (fun () ->
             let wal = Wal.create ~path in
             let expect =
               List.mapi
                 (fun i (spec, outcome) ->
                   let id = Printf.sprintf "j%04d" (i + 1) in
                   Wal.append wal (Wal.Submitted { id; spec });
                   (match outcome with
                   | Some (state, summary) ->
                       Wal.append wal (Wal.Outcome { id; state; summary })
                   | None -> ());
                   (id, { Wal.spec; outcome }))
                 jobs
             in
             Wal.close wal;
             (* a torn tail must not perturb the table *)
             let oc = open_out_gen [ Open_append ] 0o644 path in
             output_string oc "outcome j00";
             close_out oc;
             let got = Wal.replay (Wal.load ~path) in
             if got <> expect then
               QCheck2.Test.fail_reportf "replayed table differs (%d vs %d entries)"
                 (List.length got) (List.length expect);
             true)))

let test_wal_drops_unactionable () =
  let dir = temp_dir "craft_wal" in
  let path = Filename.concat dir "jobs.wal" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () ->
      let spec =
        { Wire.bench = "cg"; cls = "W"; shadow = false; priority = 0; eval_steps = None; formats = ""; strategy = "" }
      in
      let wal = Wal.create ~path in
      Wal.append wal (Wal.Submitted { id = "j0001"; spec });
      (* outcome for a job never submitted: dropped *)
      Wal.append wal (Wal.Outcome { id = "j0099"; state = Wire.Done; summary = "?" });
      (* non-terminal outcome: dropped *)
      Wal.append wal (Wal.Outcome { id = "j0001"; state = Wire.Running; summary = "?" });
      Wal.close wal;
      match Wal.replay (Wal.load ~path) with
      | [ (id, { Wal.outcome; _ }) ] ->
          checks "job listed" "j0001" id;
          checkb "still unfinished" true (outcome = None)
      | table -> Alcotest.failf "expected one entry, got %d" (List.length table))

(* A WAL written by a pre-lattice daemon: submit records carry only seven
   tokens (no formats column); a pre-strategy daemon wrote eight (no
   strategy column). Both must load cleanly and resume with the
   single-only default menu and the default bfs strategy — byte-for-byte
   fixtures, not synthesized by today's writer. *)
let test_wal_loads_prelattice_lines () =
  let dir = temp_dir "craft_wal" in
  let path = Filename.concat dir "jobs.wal" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () ->
      let oc = open_out path in
      output_string oc "# craft-wal v1\n";
      output_string oc "submit j0001 cg W 0 0 -\n";
      output_string oc "submit j0002 mg W 1 5 120000\n";
      output_string oc "submit j0003 ep W 0 0 - bf16,single\n";
      output_string oc "outcome j0001 done tested%2045\n";
      close_out oc;
      match Wal.replay (Wal.load ~path) with
      | [ (a, ea); (b, eb); (c, ec) ] ->
          checks "first id" "j0001" a;
          checks "second id" "j0002" b;
          checks "third id" "j0003" c;
          checks "old records resume single-only" "" ea.Wal.spec.Wire.formats;
          checks "steps survive alongside" "" eb.Wal.spec.Wire.formats;
          checks "7-token records resume as bfs" "" ea.Wal.spec.Wire.strategy;
          checks "8-token (pre-strategy) records keep their menu" "bf16,single"
            ec.Wal.spec.Wire.formats;
          checks "8-token records resume as bfs" "" ec.Wal.spec.Wire.strategy;
          checkb "other fields intact" true
            (eb.Wal.spec.Wire.shadow && eb.Wal.spec.Wire.priority = 5
            && eb.Wal.spec.Wire.eval_steps = Some 120000);
          checkb "outcome attached" true
            (match ea.Wal.outcome with Some (Wire.Done, _) -> true | _ -> false);
          (* and a strategy-era record in the same file round-trips both
             its menu and its strategy token *)
          let wal = Wal.create ~path in
          Wal.append wal
            (Wal.Submitted
               {
                 id = "j0004";
                 spec =
                   {
                     Wire.bench = "cg";
                     cls = "W";
                     shadow = false;
                     priority = 0;
                     eval_steps = None;
                     formats = "bf16,f16,single";
                     strategy = "anneal:7";
                   };
               });
          Wal.close wal;
          (match Wal.replay (Wal.load ~path) with
          | [ _; _; _; (d, ed) ] ->
              checks "new id" "j0004" d;
              checks "menu survives" "bf16,f16,single" ed.Wal.spec.Wire.formats;
              checks "strategy survives" "anneal:7" ed.Wal.spec.Wire.strategy
          | table -> Alcotest.failf "expected four entries, got %d" (List.length table))
      | table -> Alcotest.failf "expected three entries, got %d" (List.length table))

(* ---------------------------------------------------------------- journal *)

let test_journal_verify () =
  let dir = temp_dir "craft_jverify" in
  let path = Filename.concat dir "journal" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () ->
      let digest i = Printf.sprintf "%016x" i in
      let record i v = Printf.sprintf "%s %s %d | s MODULE: cg\n" (digest i) v i in
      (* clean journal with one duplicate digest *)
      write_file path
        ("# craft-journal v1\n" ^ record 1 "pass" ^ record 2 "fail" ^ record 2 "fail");
      (match Journal.verify ~path with
      | Ok r ->
          checki "records" 3 r.Journal.records;
          checki "distinct" 2 r.Journal.distinct;
          checki "one duplicate" 1 (List.length r.Journal.duplicates);
          checkb "not torn" false r.Journal.torn;
          checki "no bad lines" 0 r.Journal.bad
      | Error why -> Alcotest.fail why);
      (* crash truncation: unparseable suffix only *)
      write_file path ("# craft-journal v1\n" ^ record 1 "pass" ^ digest 2);
      (match Journal.verify ~path with
      | Ok r ->
          checki "one record" 1 r.Journal.records;
          checki "trailing bad" 1 r.Journal.trailing_bad;
          checkb "truncation is not torn" false r.Journal.torn
      | Error why -> Alcotest.fail why);
      (* mid-file corruption: a bad line before a good one *)
      write_file path
        ("# craft-journal v1\n" ^ record 1 "pass" ^ "scribbled!\n" ^ record 3 "pass");
      (match Journal.verify ~path with
      | Ok r ->
          checkb "torn detected" true r.Journal.torn;
          checki "bad but not trailing" 1 (r.Journal.bad - r.Journal.trailing_bad)
      | Error why -> Alcotest.fail why);
      match Journal.verify ~path:(Filename.concat dir "nope") with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "verified a missing file")

(* --------------------------------------------------------------- lockfile *)

let test_lockfile () =
  let dir = temp_dir "craft_lock" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () ->
      (match Lockfile.acquire ~dir with
      | Ok lock ->
          checkb "lockfile exists" true (Sys.file_exists (Lockfile.path ~dir));
          checkb "pid recorded" true
            (contains (read_file (Lockfile.path ~dir)) (string_of_int (Unix.getpid ())));
          Lockfile.release lock;
          checkb "lockfile removed" false (Sys.file_exists (Lockfile.path ~dir))
      | Error why -> Alcotest.fail why);
      (* a stale lockfile from a dead pid holds no kernel lock: reclaimed *)
      write_file (Lockfile.path ~dir) "999999\n";
      match Lockfile.acquire ~dir with
      | Ok lock -> Lockfile.release lock
      | Error why -> Alcotest.failf "stale lock not reclaimed: %s" why)

(* -------------------------------------------- scheduler: in-process death *)

(* The same synthetic bundle the server tests use. *)
let synthetic_kernel ?(name = "syn.W") ~n_ops ~poison () =
  let t = Builder.create () in
  let out = Builder.alloc_f t n_ops in
  let main =
    Builder.func t ~module_:"syn" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        for k = 0 to n_ops - 1 do
          let c = Builder.fconst b (if List.mem k poison then 0.1 else 0.5) in
          let v = Builder.fadd b c c in
          Builder.storef b (Builder.at (out + k)) v
        done)
  in
  let program = Builder.program t ~main in
  let reference = Array.init n_ops (fun k -> if List.mem k poison then 0.2 else 1.0) in
  {
    Kernel.name;
    program;
    setup = (fun _ -> ());
    output = (fun vm -> Vm.read_f vm out n_ops);
    verify = (fun res -> res = reference);
    reference;
    hints = Config.empty;
    comm_bytes = (fun ~ranks:_ _ -> 0.0);
  }

let default_spec =
  { Wire.bench = "syn"; cls = "W"; shadow = false; priority = 0; eval_steps = None; formats = ""; strategy = "" }

let with_stack ?(state_dir = None) ~resolve f =
  let pool = Pool.create ~options:{ Pool.default_options with workers = 2 } () in
  let cache = Compile.create_cache () in
  let store = Store.create () in
  let options = { Scheduler.default_options with state_dir } in
  let sched = Scheduler.create ~options ~resolve ~pool ~cache ~store () in
  Fun.protect
    ~finally:(fun () ->
      Scheduler.shutdown sched ~cancel_running:true ();
      Pool.shutdown pool)
    (fun () -> f sched)

let wait_done sched id =
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec go () =
    match Scheduler.result sched id with
    | Ok r -> r
    | Error _ when Unix.gettimeofday () < deadline ->
        Thread.delay 0.01;
        go ()
    | Error why -> Alcotest.failf "job %s never finished: %s" id why
  in
  go ()

(* Scheduler 2 on scheduler 1's state dir is exactly a daemon restart,
   minus the SIGKILL (the chaos test below supplies that part): finished
   jobs re-list with their persisted result, unfinished ones re-run, and
   the id sequence continues. *)
let test_scheduler_recovers_job_table () =
  let dir = temp_dir "craft_recover" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () ->
      let k = synthetic_kernel ~n_ops:4 ~poison:[ 1 ] () in
      let resolve _ = Ok k in
      let done_text =
        with_stack ~state_dir:(Some dir) ~resolve (fun sched ->
            let id = Result.get_ok (Scheduler.submit sched default_spec) in
            checks "first id" "j0001" id;
            let status, text, _ = wait_done sched id in
            checkb "done" true (status.Wire.state = Wire.Done);
            text)
      in
      (* append a submission the dead daemon never finished *)
      let wal = Wal.create ~path:(Filename.concat dir "jobs.wal") in
      Wal.append wal (Wal.Submitted { id = "j0002"; spec = default_spec });
      Wal.close wal;
      with_stack ~state_dir:(Some dir) ~resolve (fun sched ->
          (match Scheduler.result sched "j0001" with
          | Ok (status, text, _) ->
              checkb "j0001 re-listed done" true (status.Wire.state = Wire.Done);
              checks "persisted result text" done_text text
          | Error why -> Alcotest.failf "j0001 not recovered: %s" why);
          let status2, text2, _ = wait_done sched "j0002" in
          checkb "j0002 re-ran to done" true (status2.Wire.state = Wire.Done);
          checks "identical final" done_text text2;
          (* the id sequence continues past the recovered jobs *)
          let id3 = Result.get_ok (Scheduler.submit sched default_spec) in
          checks "next id continues" "j0003" id3;
          let _ = wait_done sched id3 in
          ()))

let test_events_cursor_resets_after_restart () =
  let dir = temp_dir "craft_recover" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () ->
      let k = synthetic_kernel ~n_ops:3 ~poison:[] () in
      let resolve _ = Ok k in
      let cursor =
        with_stack ~state_dir:(Some dir) ~resolve (fun sched ->
            let id = Result.get_ok (Scheduler.submit sched default_spec) in
            let _ = wait_done sched id in
            let next, lines, _ = Result.get_ok (Scheduler.events sched ~job:id ~from:0) in
            checkb "events streamed" true (List.length lines > 0);
            next)
      in
      with_stack ~state_dir:(Some dir) ~resolve (fun sched ->
          (* the old cursor is past the recovered (shorter) log: the
             scheduler restarts the stream instead of serving silence *)
          let _, lines, final =
            Result.get_ok (Scheduler.events sched ~job:"j0001" ~from:cursor)
          in
          checkb "stream restarted" true (List.length lines > 0);
          checkb "terminal and drained" true final;
          checkb "recovery event present" true
            (List.exists (fun l -> contains l "RECOVERED") lines)))

(* ------------------------------------------------- daemon kill -9 (chaos) *)

let cli_path () =
  let guess =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/craft_cli.exe"
  in
  if Sys.file_exists guess then Some guess else None

let spawn_daemon cli ~socket ~state_dir ~log =
  let out = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  (* close the low fds the test runner leaves open (alcotest keeps dups of
     its stdout/stderr around fd 4-5): a daemon that outlives a dying test
     must not pin the runner's pipes. Single-digit fds only — dash does not
     parse multi-digit fd redirections. [exec "$0"] keeps the daemon on
     sh's own pid, so the returned pid is the one to SIGKILL. *)
  let pid =
    Unix.create_process "/bin/sh"
      [|
        "sh"; "-c";
        {|exec 3>&- 4>&- 5>&- 6>&- 7>&- 8>&- 9>&-; exec "$0" "$@"|};
        cli; "serve"; "--socket"; socket; "--state-dir"; state_dir; "--jobs"; "1";
        "--wave"; "2"; "--workers"; "2"; "--store-fsync"; "1";
      |]
      Unix.stdin out out
  in
  Unix.close out;
  pid

let wait_for ?(deadline = 30.0) what cond =
  let t0 = Unix.gettimeofday () in
  while (not (cond ())) && Unix.gettimeofday () -. t0 < deadline do
    Thread.delay 0.002
  done;
  if not (cond ()) then Alcotest.failf "timed out waiting for %s" what

let test_daemon_kill9_recovery () =
  match cli_path () with
  | None -> Alcotest.skip ()
  | Some cli ->
      let dir = temp_dir "craft_chaos" in
      let state_dir = Filename.concat dir "state" in
      let socket = Filename.concat dir "d.sock" in
      let log = Filename.concat dir "serve.log" in
      let killed = ref None in
      let stop pid signal =
        (try Unix.kill pid signal with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
      in
      Fun.protect
        ~finally:(fun () ->
          Option.iter (fun pid -> stop pid Sys.sigkill) !killed;
          rm_rf dir)
        (fun () ->
          (* leg 1: daemon, submit cg.W, SIGKILL once checkpointed *)
          let pid = spawn_daemon cli ~socket ~state_dir ~log in
          killed := Some pid;
          let c = Result.get_ok (Client.connect (Server.Unix_path socket)) in
          let spec =
            { Wire.bench = "cg"; cls = "W"; shadow = false; priority = 0; eval_steps = None; formats = ""; strategy = "" }
          in
          let id = Result.get_ok (Client.submit c spec) in
          wait_for "first checkpoint" (fun () ->
              Sys.file_exists (Filename.concat (Filename.concat state_dir id) "checkpoint"));
          Unix.kill pid Sys.sigkill;
          (match Unix.waitpid [] pid with
          | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
          | _, _ -> Alcotest.fail "daemon did not die of SIGKILL");
          killed := None;
          (* leg 2: restart on the same state dir; the SAME client object
             rides through via its idempotent-retry reconnect *)
          let pid2 = spawn_daemon cli ~socket ~state_dir ~log in
          killed := Some pid2;
          let status, recovered_text, _ =
            match Client.wait ~rejoin:60.0 c id with
            | Ok r -> r
            | Error why -> Alcotest.failf "wait across restart failed: %s" why
          in
          checkb "recovered job is done" true (status.Wire.state = Wire.Done);
          checkb "non-empty final config" true (String.length recovered_text > 0);
          let second_leg = status.Wire.tested in
          Client.close c;
          stop pid2 Sys.sigterm;
          killed := None;
          (* the daemon's own log proves replay actually happened *)
          let serve_log = read_file log in
          checkb "store replayed on restart" true (contains serve_log "store: replayed");
          checkb "job requeued on restart" true (contains serve_log "RECOVERED requeued");
          (* the oracle: one uninterrupted inline run of the same search *)
          let inline_cfg = Filename.concat dir "inline.cfg" in
          let inline_out = Filename.concat dir "inline.out" in
          let rc =
            Sys.command
              (Printf.sprintf "%s search cg -c W -o %s > %s 2>&1"
                 (Filename.quote cli) (Filename.quote inline_cfg) (Filename.quote inline_out))
          in
          checki "inline search succeeds" 0 rc;
          checks "final configuration byte-identical to the uninterrupted run"
            (read_file inline_cfg) recovered_text;
          (* strictly fewer evaluations on the second leg: store+checkpoint
             replay did real work *)
          let cold =
            let out = read_file inline_out in
            let marker = "configurations tested: " in
            let ml = String.length marker in
            let rec find i =
              if i + ml > String.length out then None
              else if String.sub out i ml = marker then begin
                let rest = String.sub out (i + ml) (String.length out - i - ml) in
                let line =
                  match String.index_opt rest '\n' with
                  | Some j -> String.sub rest 0 j
                  | None -> rest
                in
                int_of_string_opt (String.trim line)
              end
              else find (i + 1)
            in
            find 0
          in
          match cold with
          | None -> Alcotest.fail "inline run did not report configurations tested"
          | Some cold ->
              checkb
                (Printf.sprintf "second leg (%d) strictly fewer than cold (%d)" second_leg
                   cold)
                true (second_leg < cold))

let test_second_daemon_refused () =
  match cli_path () with
  | None -> Alcotest.skip ()
  | Some cli ->
      let dir = temp_dir "craft_chaos" in
      let state_dir = Filename.concat dir "state" in
      let running = ref None in
      Fun.protect
        ~finally:(fun () ->
          Option.iter
            (fun pid ->
              (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
              try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
            !running;
          rm_rf dir)
        (fun () ->
          let pid =
            spawn_daemon cli ~socket:(Filename.concat dir "a.sock") ~state_dir
              ~log:(Filename.concat dir "a.log")
          in
          running := Some pid;
          (* the first daemon is up once its socket accepts *)
          let c =
            Result.get_ok (Client.connect (Server.Unix_path (Filename.concat dir "a.sock")))
          in
          ignore (Client.stats c);
          Client.close c;
          let pid2 =
            spawn_daemon cli ~socket:(Filename.concat dir "b.sock") ~state_dir
              ~log:(Filename.concat dir "b.log")
          in
          (match Unix.waitpid [] pid2 with
          | _, Unix.WEXITED 1 -> ()
          | _, Unix.WEXITED n -> Alcotest.failf "second daemon exited %d, want 1" n
          | _, _ -> Alcotest.fail "second daemon did not exit cleanly");
          checkb "refusal names the lock" true
            (contains (read_file (Filename.concat dir "b.log")) "locked by another live \
             daemon"))

let suite =
  [
    Alcotest.test_case "store: durable log round-trips across lifetimes" `Quick
      test_store_durable_roundtrip;
    Alcotest.test_case "store: close is idempotent and keeps serving" `Quick
      test_store_closed_keeps_serving;
    fuzz_store_truncation;
    fuzz_store_garbage;
    Alcotest.test_case "store: offline compaction dedups last-wins" `Quick
      test_store_compact;
    fuzz_wal_replay;
    Alcotest.test_case "wal: unactionable outcomes are dropped" `Quick
      test_wal_drops_unactionable;
    Alcotest.test_case "wal: pre-lattice 7-token submits load" `Quick
      test_wal_loads_prelattice_lines;
    Alcotest.test_case "journal: --verify classifies truncation vs torn" `Quick
      test_journal_verify;
    Alcotest.test_case "lockfile: acquire/release/stale-reclaim" `Quick test_lockfile;
    Alcotest.test_case "scheduler: WAL recovery re-lists and re-runs" `Quick
      test_scheduler_recovers_job_table;
    Alcotest.test_case "scheduler: stale event cursors restart the stream" `Quick
      test_events_cursor_resets_after_restart;
    Alcotest.test_case "daemon: kill -9 mid-campaign, restart, identical final" `Slow
      test_daemon_kill9_recovery;
    Alcotest.test_case "daemon: second daemon on a locked state dir is refused" `Slow
      test_second_daemon_refused;
  ]
