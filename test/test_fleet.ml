(* Chaos suite for the distributed worker fleet: campaigns sharded over
   in-process workers reach the same final configuration as an inline
   run while the fault injector kills, stalls, garbles and duplicates
   workers mid-batch — and the journal sees no lost or duplicate
   verdicts. Plus direct Fleet-protocol tests for lease/result/heartbeat
   semantics, rejoin delta sync and quarantine. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let contains s sub =
  let n = String.length sub in
  let rec go i =
    if i + n > String.length s then false
    else String.sub s i n = sub || go (i + 1)
  in
  go 0

(* Same shape as Test_server's synthetic kernel; built from (bench, cls)
   so the worker-side resolve reconstructs an identical program. *)
let synthetic_kernel ?(name = "syn.W") ~n_ops ~poison () =
  let t = Builder.create () in
  let out = Builder.alloc_f t n_ops in
  let main =
    Builder.func t ~module_:"syn" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        for k = 0 to n_ops - 1 do
          let c = Builder.fconst b (if List.mem k poison then 0.1 else 0.5) in
          let v = Builder.fadd b c c in
          Builder.storef b (Builder.at (out + k)) v
        done)
  in
  let program = Builder.program t ~main in
  let reference = Array.init n_ops (fun k -> if List.mem k poison then 0.2 else 1.0) in
  {
    Kernel.name;
    program;
    setup = (fun _ -> ());
    output = (fun vm -> Vm.read_f vm out n_ops);
    verify = (fun res -> res = reference);
    reference;
    hints = Config.empty;
    comm_bytes = (fun ~ranks:_ _ -> 0.0);
  }

let the_kernel () = synthetic_kernel ~n_ops:5 ~poison:[ 1; 3 ] ()

let default_spec =
  { Wire.bench = "syn"; cls = "W"; shadow = false; priority = 0; eval_steps = None; formats = ""; strategy = "" }

let worker_resolve ~bench ~cls =
  if bench = "syn" && cls = "W" then Ok (the_kernel ())
  else Error (Printf.sprintf "unknown %s.%s" bench cls)

let fast_fleet =
  {
    Fleet.heartbeat_every = 0.1;
    grace = 0.1;
    lease_ttl = 5.0;
    item_deadline = 20.0;
    poll_timeout = 0.1;
    max_batch = 4;
    quarantine_after = 3;
  }

let temp_socket () =
  let path = Filename.temp_file "craft_fleet" ".sock" in
  Sys.remove path;
  path

let wait_done sched id =
  let rec go n =
    if n > 8000 then Alcotest.failf "%s never finished" id;
    match Scheduler.result sched id with
    | Ok r -> r
    | Error _ ->
        Thread.delay 0.005;
        go (n + 1)
  in
  go 0

let with_fleet_stack ?(fleet_opts = fast_fleet) ?sched_opts f =
  let pool = Pool.create ~options:{ Pool.default_options with workers = 2 } () in
  let cache = Compile.create_cache () in
  let store = Store.create () in
  let fleet = Fleet.create ~options:fleet_opts () in
  let sched =
    Scheduler.create ?options:sched_opts ~fleet ~resolve:(fun _ -> Ok (the_kernel ()))
      ~pool ~cache ~store ()
  in
  let path = temp_socket () in
  let srv = Server.start ~fleet ~scheduler:sched (Server.Unix_path path) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Scheduler.shutdown sched ~cancel_running:true ();
      Fleet.stop fleet;
      Pool.shutdown pool)
    (fun () -> f sched store fleet (Server.Unix_path path))

(* Host one worker in a thread; a chaos Kill restarts it from scratch
   (fresh hello, same name) — the in-process analogue of SIGKILL + a
   supervisor respawn. *)
let host_worker ?faults ?chaos ~name ~stop addr =
  Thread.create
    (fun () ->
      let rec go () =
        match
          Worker.run ~name ~capacity:3 ?faults ?chaos ~dial_retries:3 ~stop
            ~resolve:worker_resolve addr
        with
        | (_ : Worker.stats) -> ()
        | exception Chaos.Killed -> go ()
      in
      go ())
    ()

let wait_live fleet n =
  let rec go i =
    if i > 2000 then Alcotest.failf "never saw %d live worker(s)" n;
    if Fleet.live_workers fleet >= n then ()
    else begin
      Thread.delay 0.005;
      go (i + 1)
    end
  in
  go 0

let inline_final () =
  let k = the_kernel () in
  let res = Bfs.search (Kernel.target k) in
  Config.print k.Kernel.program res.Bfs.final

(* Run one campaign over [n] workers (worker [0] optionally chaotic) and
   return (final_text, job_status, fleet_stats). *)
let campaign_over_workers ?chaos_spec ?sched_opts ~workers:n () =
  with_fleet_stack ?sched_opts (fun sched store fleet addr ->
      let stop_flag = Atomic.make false in
      let stop () = Atomic.get stop_flag in
      let chaos = Option.map (fun s -> Chaos.create s) chaos_spec in
      let threads =
        List.init n (fun i ->
            let name = Printf.sprintf "chaos-w%d" i in
            if i = 0 then host_worker ?chaos ~name ~stop addr
            else host_worker ~name ~stop addr)
      in
      wait_live fleet (min n 1);
      let id = Result.get_ok (Scheduler.submit sched default_spec) in
      let status, text, _summary = wait_done sched id in
      Atomic.set stop_flag true;
      List.iter Thread.join threads;
      let s = Store.stats store in
      (* in-flight dedup survived the chaos: every unique key was computed
         exactly once, store-wide *)
      checki "store entries = store misses" s.Store.misses s.Store.entries;
      (text, status, Fleet.stats fleet))

let test_fleet_matches_inline () =
  let inline = inline_final () in
  let text, status, fs = campaign_over_workers ~workers:2 () in
  checkb "fleet final = inline final" true (String.equal text inline);
  checkb "done" true (status.Wire.state = Wire.Done);
  checkb "fleet actually evaluated" true (fs.Fleet.remote > 0);
  checki "accepted results all consumed" fs.Fleet.remote fs.Fleet.accepted

let test_chaos_kill () =
  let inline = inline_final () in
  let chaos_spec =
    { Chaos.seed = 11; rate = 1.0; actions = [ Chaos.Kill ]; limit = 1; stall_for = 0.1 }
  in
  let dir = Filename.temp_file "craft_fleet_state" "" in
  Sys.remove dir;
  let sched_opts = { Scheduler.default_options with state_dir = Some dir } in
  let text, status, fs = campaign_over_workers ~chaos_spec ~sched_opts ~workers:2 () in
  checkb "final matches inline despite kill" true (String.equal text inline);
  checkb "killed lease was requeued" true (fs.Fleet.requeued_leases >= 1);
  (* journal parity: every computed key journaled exactly once — no lost
     verdicts (entries = the job's store misses = unique keys evaluated)
     and no duplicates (keys unique), despite the mid-batch kill *)
  let journal = Filename.concat (Filename.concat dir status.Wire.id) "journal" in
  let entries = Journal.scan ~path:journal in
  let keys = List.map fst entries in
  checki "journal has every computed key" status.Wire.store_misses (List.length entries);
  checki "journal keys unique" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let test_chaos_stall () =
  let inline = inline_final () in
  let chaos_spec =
    { Chaos.seed = 5; rate = 1.0; actions = [ Chaos.Stall ]; limit = 1; stall_for = 0.6 }
  in
  let text, _status, fs = campaign_over_workers ~chaos_spec ~workers:1 () in
  checkb "final matches inline despite stall" true (String.equal text inline);
  checkb "stalled lease was requeued" true (fs.Fleet.requeued_leases >= 1);
  checkb "stale post-stall push was ignored" true (fs.Fleet.ignored >= 1)

let test_chaos_garbage_rejoin () =
  let inline = inline_final () in
  let chaos_spec =
    { Chaos.seed = 3; rate = 1.0; actions = [ Chaos.Garbage ]; limit = 1; stall_for = 0.1 }
  in
  let text, _status, fs = campaign_over_workers ~chaos_spec ~workers:1 () in
  checkb "final matches inline despite garbage" true (String.equal text inline);
  checkb "worker rejoined after the dropped connection" true (fs.Fleet.rejoined >= 1)

let test_chaos_dup () =
  let inline = inline_final () in
  let chaos_spec =
    { Chaos.seed = 7; rate = 1.0; actions = [ Chaos.Dup ]; limit = 99; stall_for = 0.1 }
  in
  let text, _status, fs = campaign_over_workers ~chaos_spec ~workers:1 () in
  checkb "final matches inline despite duplicates" true (String.equal text inline);
  checkb "duplicate deliveries were ignored" true (fs.Fleet.ignored >= 1);
  checki "each accepted result consumed once" fs.Fleet.remote fs.Fleet.accepted

let test_empty_fleet_degrades_to_local () =
  let inline = inline_final () in
  with_fleet_stack (fun sched _store fleet _addr ->
      let id = Result.get_ok (Scheduler.submit sched default_spec) in
      let status, text, _ = wait_done sched id in
      checkb "done with no workers" true (status.Wire.state = Wire.Done);
      checkb "final matches inline" true (String.equal text inline);
      let fs = Fleet.stats fleet in
      checki "nothing went remote" 0 fs.Fleet.remote)

(* anneal's explicit seed pins the whole campaign: the same spec submitted
   twice over the fleet reaches the same final configuration as an inline
   run of the same strategy — the eval path (fleet vs local) is invisible *)
let test_anneal_deterministic_over_fleet () =
  let k = the_kernel () in
  let inline = Strategy.run (Strategy.Anneal 42) (Kernel.target k) in
  let inline_text = Config.print k.Kernel.program inline.Bfs.final in
  checkb "inline anneal passes" true inline.Bfs.final_pass;
  with_fleet_stack (fun sched _store fleet addr ->
      let stop_flag = Atomic.make false in
      let stop () = Atomic.get stop_flag in
      let th = host_worker ~name:"anneal-w0" ~stop addr in
      wait_live fleet 1;
      let spec = { default_spec with Wire.strategy = "anneal:42" } in
      let id1 = Result.get_ok (Scheduler.submit sched spec) in
      let _, text1, _ = wait_done sched id1 in
      let id2 = Result.get_ok (Scheduler.submit sched spec) in
      let _, text2, _ = wait_done sched id2 in
      Atomic.set stop_flag true;
      Thread.join th;
      checkb "fleet run matches inline anneal" true (String.equal text1 inline_text);
      checkb "second fleet run identical" true (String.equal text2 text1))

(* ------------------------------------------------- direct protocol tests *)

let ctx = { Fleet.bench = "syn"; cls = "W"; eval_steps = None; retries = 0 }

(* [Ok (worker_id, negotiated_version, already_done)] *)
let hello ?reconnect fleet name =
  match
    Fleet.handle fleet
      (Wire.Worker_hello { name; wire_version = Wire.version; reconnect; capacity = 4 })
  with
  | Some (Wire.Worker_welcome { worker; wire_version; already_done; _ }) ->
      Ok (worker, wire_version, already_done)
  | Some (Wire.Error_reply why) -> Error why
  | _ -> Alcotest.fail "unexpected hello reply"

let lease fleet worker =
  match Fleet.handle fleet (Wire.Lease_request { worker; capacity = 4 }) with
  | Some (Wire.Lease_reply r) -> Ok r
  | Some (Wire.Error_reply why) -> Error why
  | _ -> Alcotest.fail "unexpected lease reply"

let push fleet worker lease results =
  match Fleet.handle fleet (Wire.Result_push { worker; lease; results }) with
  | Some (Wire.Result_ack { accepted; ignored }) -> (accepted, ignored)
  | _ -> Alcotest.fail "unexpected push reply"

let rec lease_some fleet worker n =
  if n > 200 then Alcotest.fail "no batch leased";
  match lease fleet worker with
  | Ok (Some b) -> b
  | Ok None -> lease_some fleet worker (n + 1)
  | Error why -> Alcotest.failf "lease refused: %s" why

let spawn_eval fleet ~key ?(local = fun () -> Alcotest.fail "unexpected local fallback")
    () =
  let result = ref None in
  let th =
    Thread.create
      (fun () -> result := Some (Fleet.eval fleet ~ctx ~key ~text:("text-" ^ key) local))
      ()
  in
  (th, result)

let pass = Verdict.verdict_to_string Verdict.Pass

let test_protocol_walkthrough () =
  let fleet = Fleet.create ~options:{ fast_fleet with poll_timeout = 0.02 } () in
  Fun.protect ~finally:(fun () -> Fleet.stop fleet) (fun () ->
      let wid, ver, delta = Result.get_ok (hello fleet "alpha") in
      checki "negotiated version" Wire.version ver;
      checkb "fresh hello has no delta" true (delta = []);
      (* empty queue: the long poll comes back empty, not an error *)
      checkb "no work yet" true (Result.get_ok (lease fleet wid) = None);
      let th, result = spawn_eval fleet ~key:"k1" () in
      let b = lease_some fleet wid 0 in
      checkb "batch carries the item" true (b.Wire.items = [ ("k1", "text-k1") ]);
      checkb "batch context" true
        (b.Wire.bench = "syn" && b.Wire.cls = "W" && b.Wire.retries = 0);
      (* a push under a stale/bogus lease is ignored, never recorded *)
      checkb "bogus lease ignored" true (push fleet wid "bogus" [ ("k1", pass) ] = (0, 1));
      (* an unparseable verdict is ignored *)
      checkb "garbled verdict ignored" true
        (push fleet wid b.Wire.lease [ ("k1", "gibberish") ] = (0, 1));
      (* the real delivery is accepted exactly once *)
      checkb "accepted" true (push fleet wid b.Wire.lease [ ("k1", pass) ] = (1, 0));
      checkb "duplicate ignored" true (push fleet wid b.Wire.lease [ ("k1", pass) ] = (0, 1));
      Thread.join th;
      (match !result with
      | Some (Verdict.Pass, `Remote) -> ()
      | Some (_, `Local) -> Alcotest.fail "fell back to local"
      | _ -> Alcotest.fail "eval did not resolve");
      (* the spent lease was auto-released: heartbeating it says abandon *)
      (match
         Fleet.handle fleet
           (Wire.Heartbeat { worker = wid; lease = Some b.Wire.lease; completed = 1 })
       with
      | Some (Wire.Heartbeat_ack { abandon }) -> checkb "stale lease abandoned" true abandon
      | _ -> Alcotest.fail "unexpected heartbeat reply");
      match Fleet.handle fleet (Wire.Goodbye wid) with
      | Some (Wire.Goodbye_ack { requeued }) -> checki "nothing to requeue" 0 requeued
      | _ -> Alcotest.fail "unexpected goodbye reply")

let test_rejoin_delta_sync () =
  let fleet = Fleet.create ~options:{ fast_fleet with poll_timeout = 0.02 } () in
  Fun.protect ~finally:(fun () -> Fleet.stop fleet) (fun () ->
      let wid, _, _ = Result.get_ok (hello fleet "alpha") in
      let th1, r1 = spawn_eval fleet ~key:"k1" () in
      let th2, r2 = spawn_eval fleet ~key:"k2" () in
      (* wait until both items are queued, then lease them as one batch *)
      let rec grab n =
        if n > 200 then Alcotest.fail "never leased both items";
        let b = lease_some fleet wid 0 in
        if List.length b.Wire.items = 2 then b
        else begin
          (* half-batch: release by re-requesting until both are queued *)
          Thread.delay 0.005;
          grab (n + 1)
        end
      in
      let b = grab 0 in
      checkb "k1 resolved" true (push fleet wid b.Wire.lease [ ("k1", pass) ] = (1, 0));
      (* the connection drops — a hint, not a death: the lease survives *)
      Fleet.disconnected fleet wid;
      let wid', _, delta = Result.get_ok (hello ~reconnect:wid fleet "alpha") in
      checkb "same worker id on rejoin" true (wid' = wid);
      checkb "delta sync names the resolved item" true (delta = [ "k1" ]);
      (* the surviving lease still accepts the remaining item *)
      checkb "k2 accepted under the old lease" true
        (push fleet wid b.Wire.lease [ ("k2", pass) ] = (1, 0));
      Thread.join th1;
      Thread.join th2;
      checkb "both evals remote" true
        (match (!r1, !r2) with
        | Some (Verdict.Pass, `Remote), Some (Verdict.Pass, `Remote) -> true
        | _ -> false);
      let fs = Fleet.stats fleet in
      checki "one rejoin" 1 fs.Fleet.rejoined)

let test_quarantine_after_repeated_deaths () =
  let fleet =
    Fleet.create
      ~options:{ fast_fleet with poll_timeout = 0.02; quarantine_after = 2; item_deadline = 10.0 }
      ()
  in
  Fun.protect ~finally:(fun () -> Fleet.stop fleet) (fun () ->
      let local_runs = ref 0 in
      let th, result =
        spawn_eval fleet ~key:"k1"
          ~local:(fun () ->
            incr local_runs;
            Verdict.Pass)
          ()
      in
      (* incarnation 1 leases and dies (restart = fresh hello, same name) *)
      let w1, _, _ = Result.get_ok (hello fleet "crashy") in
      let (_ : Wire.batch) = lease_some fleet w1 0 in
      (* incarnation 2: the restart requeues the lease and earns strike 1 *)
      let w2, _, _ = Result.get_ok (hello fleet "crashy") in
      let (_ : Wire.batch) = lease_some fleet w2 0 in
      (* incarnation 3: strike 2 -> quarantined, hello refused *)
      (match hello fleet "crashy" with
      | Error why -> checkb "refusal names quarantine" true (contains why "quarantin")
      | Ok _ -> Alcotest.fail "quarantined worker was welcomed");
      (* with the only worker banned the waiter reclaims and runs locally *)
      Thread.join th;
      checkb "eval fell back to local" true
        (match !result with Some (Verdict.Pass, `Local) -> true | _ -> false);
      checki "local closure ran once" 1 !local_runs;
      let fs = Fleet.stats fleet in
      checkb "quarantine recorded" true (fs.Fleet.quarantined = [ "crashy" ]);
      (* leases and heartbeats from the banned worker are refused/abandoned *)
      checkb "lease refused" true (Result.is_error (lease fleet w2));
      match
        Fleet.handle fleet (Wire.Heartbeat { worker = w2; lease = None; completed = 0 })
      with
      | Some (Wire.Heartbeat_ack { abandon }) -> checkb "heartbeat abandons" true abandon
      | _ -> Alcotest.fail "unexpected heartbeat reply")

(* A worker fed a config text whose flag column carries an unknown format
   token refuses it with a typed parse error: the item is counted as
   skipped (never a fabricated verdict), the connection survives, and the
   same worker keeps evaluating well-formed items. The unserved hostile
   item falls back to the waiter's local closure at the item deadline. *)
let test_worker_skips_unknown_format () =
  with_fleet_stack
    ~fleet_opts:{ fast_fleet with poll_timeout = 0.02; lease_ttl = 0.3; item_deadline = 1.0 }
    (fun _sched _store fleet addr ->
      let stop_flag = Atomic.make false in
      let wstats = ref None in
      let th =
        Thread.create
          (fun () ->
            wstats :=
              Some
                (Worker.run ~name:"strict" ~capacity:2 ~dial_retries:3
                   ~stop:(fun () -> Atomic.get stop_flag)
                   ~resolve:worker_resolve addr))
          ()
      in
      wait_live fleet 1;
      let program = (the_kernel ()).Kernel.program in
      let local_runs = ref 0 in
      let verdict, how =
        Fleet.eval fleet ~ctx ~key:"hostile" ~text:"e9m9 MODULE: syn" (fun () ->
            incr local_runs;
            Verdict.Pass)
      in
      checkb "hostile item fell back to local" true
        (how = `Local && verdict = Verdict.Pass);
      checki "local fallback ran once" 1 !local_runs;
      (* the same connection still serves well-formed work *)
      let verdict2, how2 =
        Fleet.eval fleet ~ctx ~key:"good"
          ~text:(Config.print program Config.empty)
          (fun () -> Alcotest.fail "well-formed item should evaluate remotely")
      in
      checkb "good item evaluated remotely" true
        (how2 = `Remote && verdict2 = Verdict.Pass);
      Atomic.set stop_flag true;
      Thread.join th;
      match !wstats with
      | Some s ->
          checkb "worker counted the refusal as skipped" true (s.Worker.skipped >= 1);
          checkb "worker evaluated the good item" true (s.Worker.evaluated >= 1);
          checki "connection survived (no rejoins)" 0 s.Worker.rejoins
      | None -> Alcotest.fail "worker never returned stats")

let suite =
  [
    ("fleet: campaign over 2 workers matches inline", `Quick, test_fleet_matches_inline);
    ("fleet: chaos kill mid-batch, identical final + journal parity", `Quick, test_chaos_kill);
    ("fleet: chaos heartbeat stall, identical final", `Quick, test_chaos_stall);
    ("fleet: chaos garbage frame, rejoin, identical final", `Quick, test_chaos_garbage_rejoin);
    ("fleet: chaos duplicate delivery, identical final", `Quick, test_chaos_dup);
    ("fleet: empty fleet degrades to the local pool", `Quick, test_empty_fleet_degrades_to_local);
    ("fleet: anneal seed deterministic over the fleet", `Quick, test_anneal_deterministic_over_fleet);
    ("fleet: lease/result/heartbeat protocol walkthrough", `Quick, test_protocol_walkthrough);
    ("fleet: rejoin with result-store delta sync", `Quick, test_rejoin_delta_sync);
    ("fleet: repeated deaths quarantine the worker", `Quick, test_quarantine_after_repeated_deaths);
    ("fleet: unknown format token skipped, connection survives", `Quick, test_worker_skips_unknown_format);
  ]
