let () =
  Alcotest.run "craft"
    [
      ("util", Test_util.suite);
      ("fpbits", Test_fpbits.suite);
      ("ir", Test_ir.suite);
      ("builder", Test_builder.suite);
      ("asm", Test_asm.suite);
      ("packed", Test_packed.suite);
      ("vm", Test_vm.suite);
      ("vm-properties", Test_vm_props.suite);
      ("config", Test_config.suite);
      ("formats", Test_formats.suite);
      ("instrument", Test_instrument.suite);
      ("dataflow", Test_dataflow.suite);
      ("cancellation", Test_cancellation.suite);
      ("search", Test_search.suite);
      ("harness", Test_harness.suite);
      ("pool", Test_pool.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("strategies", Test_strategies.suite);
      ("strategy", Test_strategy.suite);
      ("kernels", Test_kernels.suite);
      ("superlu", Test_superlu.suite);
      ("analysis", Test_analysis.suite);
      ("shadow", Test_shadow.suite);
      ("compile", Test_compile.suite);
      ("wire", Test_wire.suite);
      ("server", Test_server.suite);
      ("fleet", Test_fleet.suite);
      ("recovery", Test_recovery.suite);
      ("fuzz", Test_fuzz.suite);
    ]
