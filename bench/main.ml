(* The reproduction harness: one section per table/figure of the paper, a
   search-optimization ablation, and Bechamel microbenchmarks of the
   framework itself.

   Run everything:        dune exec bench/main.exe
   Run selected sections: dune exec bench/main.exe -- fig9 fig10 sec32 *)

let workers = max 1 (min 8 (Domain.recommended_domain_count () - 1))

let section name =
  Format.printf "@.==================== %s ====================@." name

let fig_kernels classes =
  List.concat_map
    (fun cls -> [ Nas_ep.make cls; Nas_cg.make cls; Nas_ft.make cls; Nas_mg.make cls ])
    classes

(* Overhead of the base case: every FP instruction replaced by a
   double-precision snippet (paper §3.1). Returns both the modeled costs and
   the measured VM wall-clock ratio. *)
let instrumented_overhead k =
  let t0 = Unix.gettimeofday () in
  let _, nvm = Kernel.run_native k in
  let t1 = Unix.gettimeofday () in
  let _, ivm = Kernel.run_patched ~config:Config.empty k in
  let t2 = Unix.gettimeofday () in
  let nat = Cost.of_run nvm and ins = Cost.of_run ivm in
  let wall = (t2 -. t1) /. Float.max 1e-9 (t1 -. t0) in
  (nat, ins, Cost.overhead ins nat, wall)

(* ---------------------------------------------------------------- fig 1 *)

let fig1 () =
  section "Figure 1: IEEE standard formats";
  Format.printf "format    width  sign  exponent  significand  bias@.";
  Format.printf "single       32     1  %8d  %11d  %4d@." Ieee.exponent_bits32
    Ieee.significand_bits32 Ieee.bias32;
  Format.printf "double       64     1  %8d  %11d  %4d@." Ieee.exponent_bits64
    Ieee.significand_bits64 Ieee.bias64;
  Format.printf "@.example decodes:@.";
  List.iter
    (fun x -> Format.printf "  %-12g %s@." x (Ieee.describe64 x))
    [ 1.0; -0.375; 6.02e23 ];
  Format.printf "  %-12s %s@." "1.0f" (Ieee.describe32 0x3F800000l)

(* ---------------------------------------------------------------- fig 3 *)

let fig3 () =
  section "Figure 3: replacement analysis configuration file";
  let k = Nas_ep.make Kernel.W in
  let res = Bfs.search ~options:{ Bfs.default_options with workers } (Kernel.target k) in
  print_string (Config.print k.Kernel.program res.Bfs.final)

(* ---------------------------------------------------------------- fig 4 *)

let fig4 () =
  section "Figure 4: graphical configuration editor (terminal rendering)";
  let k = Nas_cg.make Kernel.W in
  let res = Bfs.search ~options:{ Bfs.default_options with workers } (Kernel.target k) in
  let _, vm = Kernel.run_native k in
  print_string (Tree_view.render ~counts:vm.Vm.counts k.Kernel.program res.Bfs.final)

(* ---------------------------------------------------------------- fig 5 *)

let fig5 () =
  section "Figure 5: in-place downcast conversion and replacement";
  let x = 1.0 /. 3.0 in
  Format.printf "double:            %a@." Replaced.pp x;
  Format.printf "replaced double:   %a@." Replaced.pp (Replaced.downcast x);
  Format.printf "extracted single:  %h@." (Replaced.upcast (Replaced.downcast x));
  Format.printf "flag is a NaN:     %b (mis-handled values never propagate silently)@."
    (Float.is_nan (Replaced.downcast x))

(* ---------------------------------------------------------------- fig 6 *)

let fig6 () =
  section "Figure 6: single-precision replacement snippet";
  print_string (Patcher.snippet_listing ())

(* ---------------------------------------------------------------- fig 7 *)

let fig7 () =
  section "Figure 7: basic block patching";
  let t = Builder.create () in
  let base = Builder.alloc_f t 3 in
  let main =
    Builder.func t ~module_:"demo" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let x = Builder.loadf b (Builder.at base) in
        let y = Builder.loadf b (Builder.at (base + 1)) in
        let z = Builder.fmul b x y in
        Builder.storef b (Builder.at (base + 2)) z)
  in
  let prog = Builder.program t ~main in
  Format.printf "--- original ---@.%a@." Ir.pp_program prog;
  let cfg = Config.set_module Config.empty "demo" Config.Single in
  let patched = Patcher.patch prog cfg in
  Format.printf "--- patched ---@.%a@." Ir.pp_program patched;
  print_endline (Patcher.patch_stats prog patched)

(* ---------------------------------------------------------------- fig 8 *)

let fig8 () =
  section "Figure 8: NAS MPI scaling results (overhead vs ranks, class A)";
  let net = Mpi_model.default_net in
  Format.printf "%-6s %6s %6s %6s %6s@." "bench" "1" "2" "4" "8";
  List.iter
    (fun k ->
      let nat, ins, _, _ = instrumented_overhead k in
      let comm r = k.Kernel.comm_bytes ~ranks:r net in
      let ov r =
        Mpi_model.overhead_at ~comp_native:nat.Cost.time_cycles
          ~comp_instr:ins.Cost.time_cycles ~comm r
      in
      Format.printf "%-6s %6.1f %6.1f %6.1f %6.1f   " k.Kernel.name (ov 1) (ov 2) (ov 4)
        (ov 8);
      List.iter
        (fun r ->
          let bars = int_of_float (ov r *. 4.0) in
          Format.printf "%s|" (String.make (max 1 bars) '#'))
        [ 1; 2; 4; 8 ];
      Format.printf "@.")
    (fig_kernels [ Kernel.A ])

(* ---------------------------------------------------------------- fig 9 *)

let fig9 () =
  section "Figure 9: NAS benchmark overhead results";
  Format.printf "%-8s %10s %18s@." "bench" "modeled" "vm wall-clock";
  List.iter
    (fun k ->
      let _, _, ov, wall = instrumented_overhead k in
      Format.printf "%-8s %9.1fX %17.1fX@." k.Kernel.name ov wall)
    (fig_kernels [ Kernel.A; Kernel.C ])

(* ---------------------------------------------------------------- fig 10 *)

let fig10 () =
  section "Figure 10: NAS benchmark search results";
  Format.printf "%-8s %10s %8s %8s %9s %8s@." "bench" "candidates" "tested" "static" "dynamic"
    "final";
  let benches =
    List.concat_map
      (fun cls ->
        [
          Nas_bt.make cls;
          Nas_cg.make cls;
          Nas_ep.make cls;
          Nas_ft.make cls;
          Nas_lu.make cls;
          Nas_mg.make cls;
          Nas_sp.make cls;
        ])
      [ Kernel.W; Kernel.A ]
  in
  let ordered = List.sort (fun a b -> compare a.Kernel.name b.Kernel.name) benches in
  List.iter
    (fun k ->
      let res =
        Bfs.search
          ~options:{ Bfs.default_options with workers; base = k.Kernel.hints }
          (Kernel.target k)
      in
      Format.printf "%-8s %10d %8d %7.1f%% %8.1f%% %8s@." k.Kernel.name res.Bfs.candidates
        res.Bfs.tested res.Bfs.static_pct res.Bfs.dynamic_pct
        (if res.Bfs.final_pass then "pass" else "fail"))
    ordered

(* ---------------------------------------------------------------- fig 11 *)

let fig11 () =
  section "Figure 11: SuperLU linear solver memplus results";
  let s = Slu.create ~n:800 () in
  let x, _ = Slu.solve_native s in
  let xs, _ = Slu.solve_converted s in
  Format.printf "memplus-like matrix: n=%d nnz=%d@." s.Slu.a.Sparse_csc.n
    (Sparse_csc.nnz s.Slu.a);
  Format.printf "double-precision solver error: %.2e@." (Slu.error s x);
  Format.printf "single-precision solver error: %.2e@.@." (Slu.error s xs);
  Format.printf "%-12s %10s %10s %13s@." "threshold" "static" "dynamic" "final error";
  List.iter
    (fun threshold ->
      let res =
        Bfs.search ~options:{ Bfs.default_options with workers } (Slu.target s ~threshold)
      in
      let patched = Patcher.patch s.Slu.program res.Bfs.final in
      let vm = Vm.create ~checked:true patched in
      s.Slu.setup vm;
      Vm.run vm;
      let err = Slu.error s (s.Slu.output vm) in
      Format.printf "%-12.1e %9.1f%% %9.1f%% %13.2e@." threshold res.Bfs.static_pct
        res.Bfs.dynamic_pct err)
    [ 1e-3; 1e-4; 7.5e-5; 5e-5; 2.5e-5; 1e-5; 1e-6 ]

(* ---------------------------------------------------------------- fig 12 *)

let fig12 () =
  section "Figure 12: mixed-precision iterative refinement";
  let t = Refine.create () in
  let d = Refine.run t Config.empty in
  let m = Refine.run t Refine.mixed_config in
  let s = Refine.run t Refine.all_single_config in
  Format.printf "%-18s %14s %16s@." "configuration" "solution error" "converted cycles";
  let row name (o : Refine.outcome) =
    Format.printf "%-18s %14.3e %15.0fc@." name o.Refine.error o.Refine.converted.Cost.cycles
  in
  row "all double" d;
  row "mixed (Fig. 12)" m;
  row "all single" s;
  Format.printf "residual history (mixed): ";
  Array.iter (fun r -> Format.printf "%.2e " r) m.Refine.history;
  Format.printf "@."

(* ---------------------------------------------------------------- §3.1 *)

let sec31 () =
  section "Section 3.1: bit-for-bit verification of the replacement";
  let kernels =
    [
      Nas_ep.make Kernel.W;
      Nas_cg.make Kernel.W;
      Nas_ft.make Kernel.W;
      Nas_mg.make Kernel.W;
      Nas_bt.make Kernel.W;
      Nas_lu.make Kernel.W;
      Nas_sp.make Kernel.W;
    ]
  in
  let bits_equal a b =
    Array.length a = Array.length b
    && Array.for_all2
         (fun u v -> Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v))
         a b
  in
  Format.printf "%-8s %22s %28s@." "bench" "all-double == native" "all-single == manual conv";
  List.iter
    (fun k ->
      let native, _ = Kernel.run_native k in
      let dbl, _ = Kernel.run_patched ~config:Config.empty k in
      let tree = Static.tree k.Kernel.program in
      let cfg_single =
        List.fold_left (fun acc n -> Bfs.force_single ~base:Config.empty acc n) Config.empty tree
      in
      let sgl, _ = Kernel.run_patched ~config:cfg_single k in
      let conv, _ = Kernel.run_converted k in
      Format.printf "%-8s %22b %28b@." k.Kernel.name (bits_equal native dbl)
        (bits_equal sgl conv))
    kernels

(* ---------------------------------------------------------------- §3.2 *)

let sec32 () =
  section "Section 3.2: AMG microkernel";
  let k = Amg_kernel.make () in
  (* eight cores share the memory bus in the paper's setup *)
  let params = { Cost.default with Cost.bandwidth = 0.22 } in
  let out, nvm = Kernel.run_native k in
  Format.printf "double run: converged to %.2e in %d iterations@." out.(0)
    (Amg_kernel.iterations out);
  let tree = Static.tree k.Kernel.program in
  let cfg =
    List.fold_left (fun acc n -> Bfs.force_single ~base:Config.empty acc n) Config.empty tree
  in
  let outs, svm = Kernel.run_patched ~config:cfg k in
  Format.printf "all-single instrumented: converged to %.2e in %d iterations (verify %s)@."
    outs.(0) (Amg_kernel.iterations outs)
    (if k.Kernel.verify outs then "pass" else "fail");
  let nat = Cost.of_run ~params nvm in
  let ins = Cost.of_run ~params svm in
  Format.printf "analysis overhead: %.2fX   (paper: 1.2X)@." (Cost.overhead ins nat);
  let _, cvm = Kernel.run_converted k in
  let conv = Cost.of_run ~params ~fmem_bytes:4.0 cvm in
  Format.printf
    "manual conversion: modeled %.3fs -> %.3fs, speedup %.2fX   (paper: 175.48s -> 95.25s, ~1.84X)@."
    nat.Cost.seconds conv.Cost.seconds
    (nat.Cost.time_cycles /. conv.Cost.time_cycles)

(* ---------------------------------------------------------------- §3.3 *)

let sec33 () =
  section "Section 3.3: SuperLU headline numbers";
  let s = Slu.create ~n:800 () in
  let x, nvm = Slu.solve_native s in
  let xs, cvm = Slu.solve_converted s in
  (* sparse gather/scatter sustains only part of streaming bandwidth *)
  let params = { Cost.default with Cost.bandwidth = 0.84 } in
  let nat = Cost.of_run ~params nvm in
  let conv = Cost.of_run ~params ~fmem_bytes:4.0 cvm in
  Format.printf "double error: %.2e   (paper: 2.16e-12)@." (Slu.error s x);
  Format.printf "single error: %.2e   (paper: 5.86e-04)@." (Slu.error s xs);
  Format.printf "single build speedup: %.2fX   (paper: 1.16X)@."
    (nat.Cost.time_cycles /. conv.Cost.time_cycles);
  Format.printf "throughput: %.0f -> %.0f MFlops (improvement %+.0f)   (paper: +150 MFlops)@."
    (Cost.mflops nat) (Cost.mflops conv)
    (Cost.mflops conv -. Cost.mflops nat)

(* ------------------------------------------------------------- ablation *)

let ablation () =
  section "Ablation: search optimizations (paper §2.2)";
  let run_variants k =
    Format.printf "%s search:@.%-28s %8s %8s %8s@." k.Kernel.name "configuration" "tested"
      "static" "final";
    List.iter
      (fun (name, binary_split, prioritize) ->
        let res =
          Bfs.search
            ~options:
              { Bfs.default_options with workers = 1; binary_split; prioritize;
                base = k.Kernel.hints }
            (Kernel.target k)
        in
        Format.printf "  %-28s %6d %7.1f%% %8s@." name res.Bfs.tested res.Bfs.static_pct
          (if res.Bfs.final_pass then "pass" else "fail"))
      [
        ("both optimizations", true, true);
        ("no binary splitting", false, true);
        ("no prioritization", true, false);
        ("neither", false, false);
      ]
  in
  (* SP: a few non-replaceable instructions among many replaceable ones —
     binary splitting prunes configurations. CG: dense failures — the
     partitions all fail and splitting costs extra tests (the paper's SP
     footnote in miniature). Prioritization changes test order (hot
     structures are ruled out first), not the totals. *)
  run_variants (Nas_sp.make Kernel.W);
  run_variants (Nas_cg.make Kernel.W);
  let k = Nas_sp.make Kernel.W in
  let plain = Bfs.search ~options:{ Bfs.default_options with workers } (Kernel.target k) in
  let composed =
    Bfs.search ~options:{ Bfs.default_options with workers; second_phase = true }
      (Kernel.target k)
  in
  Format.printf "@.second search phase on sp.W (union fails):@.";
  Format.printf "  plain:    static %5.1f%%, final %s (tested %d)@." plain.Bfs.static_pct
    (if plain.Bfs.final_pass then "pass" else "fail")
    plain.Bfs.tested;
  Format.printf "  composed: static %5.1f%%, final %s (tested %d)@." composed.Bfs.static_pct
    (if composed.Bfs.final_pass then "pass" else "fail")
    composed.Bfs.tested

(* ------------------------------------------------ dataflow optimization *)

let dataflow () =
  section "Future optimization (paper 2.5): static data-flow check removal";
  Format.printf "%-8s %16s %18s %18s %14s@." "bench" "checks removed" "plain overhead"
    "optimized" "speedup";
  List.iter
    (fun k ->
      let res =
        Bfs.search
          ~options:{ Bfs.default_options with workers; base = k.Kernel.hints }
          (Kernel.target k)
      in
      let cfg = res.Bfs.final in
      let df = Dataflow.analyze k.Kernel.program cfg in
      let removable, total = Dataflow.checks_removable df k.Kernel.program cfg in
      let run p =
        let vm = Vm.create ~checked:true p in
        k.Kernel.setup vm;
        Vm.run vm;
        Cost.of_run vm
      in
      let _, nvm = Kernel.run_native k in
      let nat = Cost.of_run nvm in
      let plain = run (Patcher.patch k.Kernel.program cfg) in
      let opt = run (Patcher.patch ~dataflow:true k.Kernel.program cfg) in
      Format.printf "%-8s %10d/%-5d %17.2fX %17.2fX %13.2fX@." k.Kernel.name removable
        total (Cost.overhead plain nat) (Cost.overhead opt nat)
        (plain.Cost.time_cycles /. opt.Cost.time_cycles))
    [
      Nas_ep.make Kernel.A;
      Nas_cg.make Kernel.A;
      Nas_ft.make Kernel.A;
      Nas_mg.make Kernel.A;
      Nas_lu.make Kernel.A;
    ]

(* -------------------------------------------------------- packed values *)

let packed () =
  section "Packed XMM values (paper Figs. 1/5: 2x doubles vs 4x singles)";
  (* a stream kernel y = a*x + y, scalar vs packed, double vs converted *)
  let n = 512 in
  let build packed =
    let t = Builder.create () in
    let x = Builder.alloc_f t n in
    let y = Builder.alloc_f t n in
    let main =
      Builder.func t ~module_:"stream" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
          let a = Builder.fconst b 1.25 in
          if packed then begin
            let ap = Builder.fpair b a a in
            Builder.for_range b 0 (n / 2) (fun i ->
                let i2 = Builder.imulc b i 2 in
                let xv = Builder.loadfp b (Builder.idx x i2) in
                let yv = Builder.loadfp b (Builder.idx y i2) in
                Builder.storefp b (Builder.idx y i2)
                  (Builder.faddp b (Builder.fmulp b ap xv) yv))
          end
          else
            Builder.for_range b 0 n (fun i ->
                let xv = Builder.loadf b (Builder.idx x i) in
                let yv = Builder.loadf b (Builder.idx y i) in
                Builder.storef b (Builder.idx y i)
                  (Builder.fadd b (Builder.fmul b a xv) yv)))
    in
    Builder.program t ~main
  in
  let cost prog ~single =
    let p = if single then To_single.convert prog else prog in
    let vm = Vm.create ~smode:(if single then Vm.Plain else Vm.Flagged) p in
    Vm.run vm;
    (Cost.of_run ~fmem_bytes:(if single then 4.0 else 8.0) vm).Cost.time_cycles
  in
  let scalar = build false and packed_p = build true in
  let sd = cost scalar ~single:false in
  Format.printf "%-24s %14s %10s@." "stream daxpy variant" "model cycles" "speedup";
  List.iter
    (fun (name, c) -> Format.printf "%-24s %14.0f %9.2fX@." name c (sd /. c))
    [
      ("scalar double", sd);
      ("packed double", cost packed_p ~single:false);
      ("scalar single (conv)", cost scalar ~single:true);
      ("packed single (conv)", cost packed_p ~single:true);
    ];
  Format.printf
    "(the packed+single corner is the paper's motivation: half the memory@.\
     traffic and twice the lanes of packed doubles)@."

(* ------------------------------------------------- search strategies *)

(* The pluggable-strategy bake-off: every strategy behind the Strategy
   interface runs the same campaigns (kernel x backend, second-phase
   composition on, exactly like the formats bench) and the bench asserts
   — exit 1 on violation — that every strategy's final configuration is
   verified passing and saves at least as many bits as BFS's on the same
   campaign. Emits the strategy x kernel x backend matrix of
   evals-to-final, wall time and bits saved to BENCH_strategies.json. *)
let strategies () =
  section "Search-strategy bake-off: evals-to-final, wall time, bits saved";
  let kernels =
    [ Nas_cg.make Kernel.W; Nas_mg.make Kernel.W; Nas_ep.make Kernel.W ]
  in
  let backends = [ ("compiled", Compile.Compiled); ("interp", Compile.Interp) ] in
  let toks =
    [
      Strategy.Bfs;
      Strategy.Split;
      Strategy.Delta;
      Strategy.Anneal Strategy.default_seed;
    ]
  in
  Format.printf "(second-phase composition on, %d workers)@." workers;
  Format.printf "%-6s %-9s %-8s %8s %9s %6s %6s@." "kernel" "backend" "strategy"
    "evals" "wall(s)" "bits" "final";
  let rows =
    List.concat_map
      (fun (k : Kernel.t) ->
        List.concat_map
          (fun (bname, backend) ->
            let options =
              {
                Bfs.default_options with
                workers;
                second_phase = true;
                base = k.Kernel.hints;
              }
            in
            let bfs_bits = ref 0 in
            List.map
              (fun tok ->
                let target = Kernel.target ~backend k in
                let t0 = Unix.gettimeofday () in
                let r = Strategy.run ~options tok target in
                let wall = Unix.gettimeofday () -. t0 in
                let name = Strategy.to_string tok in
                if tok = Strategy.Bfs then bfs_bits := r.Bfs.bits_saved;
                if not r.Bfs.final_pass then begin
                  Format.printf "!! %s/%s/%s: final configuration is unverified@."
                    k.Kernel.name bname name;
                  exit 1
                end;
                if r.Bfs.bits_saved < !bfs_bits then begin
                  Format.printf
                    "!! %s/%s/%s: saved %d bits, BFS saved %d — worse than the \
                     baseline@."
                    k.Kernel.name bname name r.Bfs.bits_saved !bfs_bits;
                  exit 1
                end;
                Format.printf "%-6s %-9s %-8s %8d %9.2f %6d %6s@." k.Kernel.name
                  bname name r.Bfs.tested wall r.Bfs.bits_saved
                  (if r.Bfs.final_pass then "pass" else "FAIL");
                (k.Kernel.name, bname, name, r.Bfs.tested, wall, r.Bfs.bits_saved,
                 r.Bfs.bits_saved - !bfs_bits))
              toks)
          backends)
      kernels
  in
  let oc = open_out "BENCH_strategies.json" in
  Printf.fprintf oc "{\n  \"workers\": %d,\n  \"matrix\": [\n" workers;
  List.iteri
    (fun i (kernel, backend, strat, evals, wall, bits, vs_bfs) ->
      Printf.fprintf oc
        "    { \"kernel\": %S, \"backend\": %S, \"strategy\": %S, \"evals\": \
         %d, \"wall_s\": %.3f, \"bits_saved\": %d, \"bits_vs_bfs\": %d, \
         \"final_pass\": true }%s\n"
        kernel backend strat evals wall bits vs_bfs
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Format.printf
    "@.every strategy's final is verified passing and saves >= BFS bits \
     (asserted)@.(written to BENCH_strategies.json)@."

(* --------------------------------------------------- cancellation (§4.4) *)

let cancel () =
  section "Related work (paper 4.4): dynamic cancellation detection";
  Format.printf
    "The paper contrasts its <20X instrumentation against shadow-value@.\
     cancellation tools at 160X-1000X; its own earlier exponent-based@.\
     detector (Lam et al., WHIST'11) is rebuilt here.@.@.";
  Format.printf "%-8s %10s %12s  top cancellation site@." "bench" "overhead" "cancels";
  List.iter
    (fun k ->
      let _, nvm = Kernel.run_native k in
      let instr, layout = Cancellation.instrument k.Kernel.program in
      let vm = Vm.create instr in
      k.Kernel.setup vm;
      Vm.run vm;
      let sites = Cancellation.read_sites layout vm in
      let cancels = List.fold_left (fun a s -> a + s.Cancellation.cancellations) 0 sites in
      let top =
        List.sort (fun a b -> compare b.Cancellation.total_bits a.Cancellation.total_bits) sites
      in
      let desc =
        match top with
        | s :: _ when s.Cancellation.cancellations > 0 ->
            Printf.sprintf "0x%06x %s (avg %.1f bits)" s.Cancellation.addr
              s.Cancellation.disasm
              (float_of_int s.Cancellation.total_bits /. float_of_int s.Cancellation.cancellations)
        | _ -> "none"
      in
      Format.printf "%-8s %9.1fX %12d  %s@." k.Kernel.name
        (Cost.overhead (Cost.of_run vm) (Cost.of_run nvm))
        cancels desc)
    [
      Nas_ep.make Kernel.W;
      Nas_cg.make Kernel.W;
      Nas_ft.make Kernel.W;
      Nas_mg.make Kernel.W;
      Nas_lu.make Kernel.W;
      Nas_sp.make Kernel.W;
    ]

(* ------------------------------------------------------- worker pool *)

(* Throughput of the supervised worker pool vs the serial evaluator on one
   NAS kernel search campaign. Emits BENCH_pool.json next to the other
   BENCH artifacts. *)
let pool_bench () =
  section "Supervised worker pool: search throughput (evals/sec)";
  let k = Nas_cg.make Kernel.W in
  let campaign ~jobs =
    let pool =
      if jobs <= 1 then None
      else Some (Pool.create ~options:{ Pool.default_options with workers = jobs } ())
    in
    let t0 = Unix.gettimeofday () in
    let res =
      Bfs.search
        ~options:{ Bfs.default_options with workers = jobs; base = k.Kernel.hints; pool }
        (Kernel.target k)
    in
    let dt = Unix.gettimeofday () -. t0 in
    Option.iter Pool.shutdown pool;
    (res.Bfs.tested, dt, float_of_int res.Bfs.tested /. Float.max 1e-9 dt)
  in
  let serial_tested, serial_dt, serial_eps = campaign ~jobs:1 in
  Format.printf "(%d core(s) available — parallel speedup is bounded by that)@."
    (Domain.recommended_domain_count ());
  Format.printf "%-12s %8s %10s %12s %9s@." "variant" "evals" "wall (s)" "evals/sec"
    "speedup";
  Format.printf "%-12s %8d %10.3f %12.1f %8.2fX@." "serial" serial_tested serial_dt
    serial_eps 1.0;
  let rows =
    List.map
      (fun jobs ->
        let tested, dt, eps = campaign ~jobs in
        Format.printf "%-12s %8d %10.3f %12.1f %8.2fX@."
          (Printf.sprintf "pool -j %d" jobs)
          tested dt eps (eps /. serial_eps);
        (jobs, tested, dt, eps))
      [ 1; 2; 4 ]
  in
  let oc = open_out "BENCH_pool.json" in
  Printf.fprintf oc "{\n  \"kernel\": \"%s\",\n  \"cores\": %d,\n" k.Kernel.name
    (Domain.recommended_domain_count ());
  Printf.fprintf oc
    "  \"serial\": { \"evals\": %d, \"seconds\": %.6f, \"evals_per_sec\": %.2f },\n"
    serial_tested serial_dt serial_eps;
  Printf.fprintf oc "  \"pool\": [\n";
  List.iteri
    (fun i (jobs, tested, dt, eps) ->
      Printf.fprintf oc
        "    { \"workers\": %d, \"evals\": %d, \"seconds\": %.6f, \"evals_per_sec\": \
         %.2f, \"speedup\": %.3f }%s\n"
        jobs tested dt eps (eps /. serial_eps)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Format.printf "(written to BENCH_pool.json)@."

(* ---------------------------------------------------- shadow guidance *)

(* Evaluation count and modeled campaign wall-clock of shadow-guided vs
   unguided BFS on NAS CG and MG, plus the tracer's overhead over a plain
   native run. Emits BENCH_shadow.json. *)
let shadow_bench () =
  section "Shadow-guided search: evaluations saved (NAS CG and MG)";
  let prune_bound = 1e-1 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let row k =
    let prog = k.Kernel.program in
    let (), t_plain =
      time (fun () ->
          let vm = Vm.create prog in
          k.Kernel.setup vm;
          Vm.run vm)
    in
    let tracer =
      Shadow_tracer.create ~config:(Shadow_tracer.all_single ~base:k.Kernel.hints prog) prog
    in
    let (), t_traced =
      time (fun () -> ignore (Shadow_tracer.trace tracer ~setup:k.Kernel.setup))
    in
    let report = Shadow_report.make ~base:k.Kernel.hints prog tracer in
    (* modeled per-evaluation cost: one instrumented run (every evaluation
       of the campaign runs the patched binary once) *)
    let eval_cost =
      let patched = Patcher.patch prog k.Kernel.hints in
      let vm = Vm.create ~checked:true patched in
      k.Kernel.setup vm;
      Vm.run vm;
      Cost.of_run vm
    in
    (* modeled conversion speedup of a final configuration (Vm.Cost) *)
    let native_cost =
      let vm = Vm.create prog in
      k.Kernel.setup vm;
      Vm.run vm;
      Cost.of_run vm
    in
    let speedup_of cfg =
      let vm = Vm.create ~smode:Vm.Plain (To_single.convert_config prog cfg) in
      k.Kernel.setup vm;
      Vm.run vm;
      native_cost.Cost.time_cycles /. (Cost.of_run ~fmem_bytes:4.0 vm).Cost.time_cycles
    in
    let campaign ~shadow =
      let options =
        { Bfs.default_options with base = k.Kernel.hints; shadow }
      in
      time (fun () -> Bfs.search ~options (Kernel.target k))
    in
    let unguided, wall_u = campaign ~shadow:None in
    let guided, wall_s =
      campaign ~shadow:(Some (Bfs.shadow ~prune_above:prune_bound report))
    in
    let saved =
      100.0 *. (1.0 -. (float_of_int guided.Bfs.tested /. float_of_int unguided.Bfs.tested))
    in
    Format.printf
      "%-6s tracer %.1fx (%.3fs -> %.3fs)  evals %d -> %d (%d pruned, %.1f%% saved)@."
      k.Kernel.name
      (t_traced /. Float.max 1e-9 t_plain)
      t_plain t_traced unguided.Bfs.tested guided.Bfs.tested guided.Bfs.pruned saved;
    Format.printf
      "       modeled campaign %.3fs -> %.3fs (%.3fs/eval); final speedup %.3fX -> %.3fX \
       (static %.1f%% -> %.1f%%)@."
      (float_of_int unguided.Bfs.tested *. eval_cost.Cost.seconds)
      (float_of_int guided.Bfs.tested *. eval_cost.Cost.seconds)
      eval_cost.Cost.seconds
      (speedup_of unguided.Bfs.final)
      (speedup_of guided.Bfs.final) unguided.Bfs.static_pct guided.Bfs.static_pct;
    Printf.sprintf
      "    { \"kernel\": \"%s\",\n\
      \      \"tracer\": { \"plain_seconds\": %.6f, \"traced_seconds\": %.6f, \
       \"overhead_x\": %.3f },\n\
      \      \"modeled_eval_seconds\": %.6f,\n\
      \      \"unguided\": { \"evals\": %d, \"wall_seconds\": %.6f, \
       \"modeled_campaign_seconds\": %.6f, \"static_pct\": %.2f, \"final_speedup\": %.4f \
       },\n\
      \      \"shadow\": { \"evals\": %d, \"pruned\": %d, \"wall_seconds\": %.6f, \
       \"modeled_campaign_seconds\": %.6f, \"static_pct\": %.2f, \"final_speedup\": %.4f \
       },\n\
      \      \"evals_saved_pct\": %.2f }" k.Kernel.name t_plain t_traced
      (t_traced /. Float.max 1e-9 t_plain)
      eval_cost.Cost.seconds unguided.Bfs.tested wall_u
      (float_of_int unguided.Bfs.tested *. eval_cost.Cost.seconds)
      unguided.Bfs.static_pct
      (speedup_of unguided.Bfs.final)
      guided.Bfs.tested guided.Bfs.pruned wall_s
      (float_of_int guided.Bfs.tested *. eval_cost.Cost.seconds)
      guided.Bfs.static_pct
      (speedup_of guided.Bfs.final)
      saved
  in
  let rows = List.map row [ Nas_cg.make Kernel.W; Nas_mg.make Kernel.W ] in
  let oc = open_out "BENCH_shadow.json" in
  Printf.fprintf oc
    "{\n  \"threshold\": %.1e,\n  \"prune_bound\": %.1e,\n  \"kernels\": [\n%s\n  ]\n}\n"
    Shadow_report.default_threshold prune_bound (String.concat ",\n" rows);
  close_out oc;
  Format.printf "(written to BENCH_shadow.json)@."

(* ------------------------------------------------- compiled VM backend *)

(* Interp-vs-compiled: per-evaluation wall time of one checked patched run
   (the search's unit of work), then two full BFS campaigns per kernel —
   one per backend — checking that results are identical and reporting the
   code cache's hit rate across the campaign. Emits BENCH_vm.json. *)
let vm_bench () =
  section "Closure-compiled backend: per-eval speedup and campaign wall time";
  let kernels = fig_kernels [ Kernel.W ] in
  let best_of reps f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      f ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  Format.printf "per-evaluation (checked patched run, hints config, best of 3):@.";
  Format.printf "%-8s %12s %14s %9s@." "kernel" "interp (s)" "compiled (s)" "speedup";
  let per_eval =
    List.map
      (fun (k : Kernel.t) ->
        let patched = Patcher.patch k.Kernel.program k.Kernel.hints in
        let eval runner () =
          let vm = Vm.create ~checked:true patched in
          k.Kernel.setup vm;
          runner vm
        in
        let cache = Compile.create_cache () in
        (* warm both paths once: first compiled run pays the compile *)
        eval Vm.run ();
        eval (fun vm -> Compile.run ~cache vm) ();
        let interp_s = best_of 3 (eval Vm.run) in
        let compiled_s = best_of 3 (eval (fun vm -> Compile.run ~cache vm)) in
        let speedup = interp_s /. Float.max 1e-9 compiled_s in
        Format.printf "%-8s %12.4f %14.4f %8.2fX@." k.Kernel.name interp_s compiled_s
          speedup;
        (k.Kernel.name, interp_s, compiled_s, speedup))
      kernels
  in
  let campaign backend (k : Kernel.t) =
    let h, target = Harness.wrap_target (Kernel.target ~backend k) in
    let t0 = Unix.gettimeofday () in
    let res =
      Bfs.search ~options:{ Bfs.default_options with base = k.Kernel.hints } target
    in
    let dt = Unix.gettimeofday () -. t0 in
    (res, dt, Harness.counters_list h, target.Bfs.Target.code_cache)
  in
  Format.printf "@.full BFS campaign per backend:@.";
  Format.printf "%-8s %12s %14s %9s %7s %11s@." "kernel" "interp (s)" "compiled (s)"
    "speedup" "evals" "cache hits";
  let campaigns =
    List.map
      (fun (k : Kernel.t) ->
        let ri, interp_s, vi, _ = campaign Compile.Interp k in
        let rc, compiled_s, vc, cache = campaign Compile.Compiled k in
        let same_final =
          Config.digest k.Kernel.program ri.Bfs.final
          = Config.digest k.Kernel.program rc.Bfs.final
        in
        let same_verdicts = vi = vc in
        if not (same_final && same_verdicts) then begin
          (* equivalence is the point of this section: make CI smoke runs
             fail loudly instead of archiving a wrong JSON *)
          Format.printf
            "!! %s: backends disagree (final identical: %b, verdicts identical: %b)@."
            k.Kernel.name same_final same_verdicts;
          exit 1
        end;
        let stats =
          match cache with
          | Some c -> Compile.stats c
          | None -> { Code_cache.hits = 0; misses = 0; entries = 0 }
        in
        let rate = Code_cache.hit_rate stats in
        Format.printf "%-8s %12.3f %14.3f %8.2fX %7d %10.1f%%@." k.Kernel.name interp_s
          compiled_s
          (interp_s /. Float.max 1e-9 compiled_s)
          rc.Bfs.tested (100.0 *. rate);
        ( k.Kernel.name,
          interp_s,
          compiled_s,
          rc.Bfs.tested,
          same_final,
          same_verdicts,
          stats,
          rate ))
      [ Nas_cg.make Kernel.W; Nas_mg.make Kernel.W ]
  in
  let oc = open_out "BENCH_vm.json" in
  Printf.fprintf oc "{\n  \"cores\": %d,\n  \"per_eval\": [\n"
    (Domain.recommended_domain_count ());
  List.iteri
    (fun i (name, interp_s, compiled_s, speedup) ->
      Printf.fprintf oc
        "    { \"kernel\": %S, \"interp_s\": %.6f, \"compiled_s\": %.6f, \"speedup\": \
         %.3f }%s\n"
        name interp_s compiled_s speedup
        (if i = List.length per_eval - 1 then "" else ","))
    per_eval;
  Printf.fprintf oc "  ],\n  \"campaigns\": [\n";
  List.iteri
    (fun i (name, interp_s, compiled_s, evals, same_final, same_verdicts, stats, rate) ->
      Printf.fprintf oc
        "    { \"kernel\": %S, \"interp_s\": %.6f, \"compiled_s\": %.6f, \"speedup\": \
         %.3f, \"evals\": %d, \"identical_final\": %b, \"identical_verdicts\": %b, \
         \"cache_hits\": %d, \"cache_misses\": %d, \"cache_hit_rate\": %.4f }%s\n"
        name interp_s compiled_s
        (interp_s /. Float.max 1e-9 compiled_s)
        evals same_final same_verdicts stats.Code_cache.hits stats.Code_cache.misses rate
        (if i = List.length campaigns - 1 then "" else ","))
    campaigns;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Format.printf "(written to BENCH_vm.json)@."

(* --------------------------------------------------- precision formats *)

(* The precision-format lattice end-to-end. Three asserts (exit 1 on any
   failure, so CI smoke runs fail loudly instead of archiving wrong JSON):
   interpreter and compiled backends stay bit-identical under every menu
   format; the {single,double}-restricted lattice reproduces the seed
   (pre-lattice) BFS final byte-for-byte; and the full
   bf16/f16/single/double lattice completes with a verified final saving
   strictly more bits than the single|double baseline. Emits
   BENCH_formats.json with bits saved per kernel. *)
let formats_bench () =
  section "Precision-format lattice: bits saved per kernel";
  let menu = [ Formats.bfloat16; Formats.half; Formats.single; Formats.double ] in
  let kernels = [ Nas_cg.make Kernel.W; Nas_mg.make Kernel.W ] in
  let all_flag_cfg flag prog =
    Array.fold_left
      (fun acc (info : Static.insn_info) -> Config.set_insn acc info.Static.addr flag)
      Config.empty (Static.candidates prog)
  in
  (* 1. backend bit-identity under every menu format *)
  Format.printf "backend bit-identity per format (checked, all-candidates config):@.";
  let identity =
    List.concat_map
      (fun (k : Kernel.t) ->
        List.map
          (fun f ->
            let patched =
              Patcher.patch k.Kernel.program
                (all_flag_cfg (Config.of_format f) k.Kernel.program)
            in
            let run runner =
              let vm = Vm.create ~checked:true patched in
              k.Kernel.setup vm;
              (match runner vm with
              | () -> ()
              | exception Vm.Trap _ -> ()
              | exception Vm.Limit _ -> ());
              vm
            in
            let vi = run Vm.run in
            let vc = run (fun vm -> Compile.run vm) in
            let identical =
              Array.length vi.Vm.fheap = Array.length vc.Vm.fheap
              && Array.for_all2
                   (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
                   vi.Vm.fheap vc.Vm.fheap
              && vi.Vm.steps = vc.Vm.steps
            in
            if not identical then begin
              Format.printf "!! %s: interpreter and compiled disagree under %s@."
                k.Kernel.name (Formats.name f);
              exit 1
            end;
            Format.printf "  %-6s %-6s identical (%d steps)@." k.Kernel.name
              (Formats.name f) vi.Vm.steps;
            (k.Kernel.name, Formats.name f, vi.Vm.steps))
          menu)
      kernels
  in
  (* 2 + 3. campaigns: seed baseline, restricted lattice, full lattice *)
  let opts formats =
    { Bfs.default_options with workers; second_phase = true; formats }
  in
  Format.printf "@.lattice campaigns (second-phase composition on):@.";
  Format.printf "%-8s %6s %15s %14s %7s@." "kernel" "evals" "baseline bits" "lattice bits"
    "gain";
  let campaigns =
    List.map
      (fun (k : Kernel.t) ->
        let baseline = Bfs.search ~options:(opts [ Formats.single ]) (Kernel.target k) in
        let restricted =
          Bfs.search ~options:(opts [ Formats.single; Formats.double ]) (Kernel.target k)
        in
        let t0 = Unix.gettimeofday () in
        let lattice = Bfs.search ~options:(opts menu) (Kernel.target k) in
        let wall = Unix.gettimeofday () -. t0 in
        let dig r = Config.digest k.Kernel.program r.Bfs.final in
        if dig restricted <> dig baseline then begin
          Format.printf
            "!! %s: {single,double}-restricted lattice diverges from the seed BFS final@."
            k.Kernel.name;
          exit 1
        end;
        if not (baseline.Bfs.final_pass && lattice.Bfs.final_pass) then begin
          Format.printf "!! %s: unverified final (baseline %b, lattice %b)@." k.Kernel.name
            baseline.Bfs.final_pass lattice.Bfs.final_pass;
          exit 1
        end;
        if lattice.Bfs.bits_saved <= baseline.Bfs.bits_saved then begin
          Format.printf
            "!! %s: lattice saved %d bits, baseline %d — the descent went nowhere@."
            k.Kernel.name lattice.Bfs.bits_saved baseline.Bfs.bits_saved;
          exit 1
        end;
        Format.printf "%-8s %6d %15d %14d %+6d@." k.Kernel.name lattice.Bfs.tested
          baseline.Bfs.bits_saved lattice.Bfs.bits_saved
          (lattice.Bfs.bits_saved - baseline.Bfs.bits_saved);
        let census = Config.format_census k.Kernel.program lattice.Bfs.final in
        Format.printf "         census: %s@."
          (String.concat ", "
             (List.map (fun (n, c) -> Printf.sprintf "%s=%d" n c) census));
        (k.Kernel.name, baseline, lattice, wall, census))
      kernels
  in
  let oc = open_out "BENCH_formats.json" in
  Printf.fprintf oc "{\n  \"menu\": %S,\n  \"identity\": [\n"
    (Formats.menu_to_string menu);
  List.iteri
    (fun i (kernel, fmt, steps) ->
      Printf.fprintf oc
        "    { \"kernel\": %S, \"format\": %S, \"identical\": true, \"steps\": %d }%s\n"
        kernel fmt steps
        (if i = List.length identity - 1 then "" else ","))
    identity;
  Printf.fprintf oc "  ],\n  \"campaigns\": [\n";
  List.iteri
    (fun i (kernel, baseline, lattice, wall, census) ->
      let census_json =
        String.concat ", "
          (List.map (fun (n, c) -> Printf.sprintf "%S: %d" n c) census)
      in
      Printf.fprintf oc
        "    { \"kernel\": %S, \"baseline_bits_saved\": %d, \"lattice_bits_saved\": %d, \
         \"restricted_matches_seed\": true, \"final_pass\": %b, \"evals\": %d, \
         \"wall_s\": %.3f, \"census\": { %s } }%s\n"
        kernel baseline.Bfs.bits_saved lattice.Bfs.bits_saved lattice.Bfs.final_pass
        lattice.Bfs.tested wall census_json
        (if i = List.length campaigns - 1 then "" else ","))
    campaigns;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Format.printf "(written to BENCH_formats.json)@."

(* ---------------------------------------------------- campaign server *)

(* The serving layer end-to-end over a real Unix socket: concurrent
   clients submit overlapping cg/mg campaigns to one in-process daemon
   sharing a worker pool, a code cache and the cross-campaign result
   store. Asserts — exit 1 on divergence — that served campaigns produce
   final configurations identical to inline search and that a duplicate
   cg.W campaign is served >= 50% from the store. Emits BENCH_server.json. *)
let server_bench () =
  section "Campaign server: concurrent clients, cross-campaign dedup";
  let resolve (spec : Wire.job_spec) =
    match (spec.Wire.bench, spec.Wire.cls) with
    | "cg", "W" -> Ok (Nas_cg.make Kernel.W)
    | "mg", "W" -> Ok (Nas_mg.make Kernel.W)
    | b, c -> Error (Printf.sprintf "unknown benchmark %s.%s" b c)
  in
  let pool = Pool.create ~options:{ Pool.default_options with workers = 4 } () in
  let cache = Compile.create_cache () in
  let store = Store.create () in
  let sched =
    Scheduler.create
      ~options:{ Scheduler.default_options with max_concurrent = 4 }
      ~resolve ~pool ~cache ~store ()
  in
  let path = Filename.temp_file "craft_bench" ".sock" in
  Sys.remove path;
  let srv = Server.start ~scheduler:sched (Server.Unix_path path) in
  let ok = function
    | Ok v -> v
    | Error e ->
        Format.printf "!! server bench: %s@." e;
        exit 1
  in
  let connect () = ok (Client.connect (Server.Unix_path path)) in
  let spec bench =
    { Wire.bench; cls = "W"; shadow = false; priority = 0; eval_steps = None; formats = ""; strategy = "" }
  in
  let hit_frac (st : Wire.job_status) =
    float_of_int st.Wire.store_hits /. float_of_int (max 1 st.Wire.tested)
  in

  (* acceptance: a second, concurrently-connected client resubmits the
     same cg.W campaign after the first completes — it must reproduce the
     inline `craft search` final config while being served from the store *)
  let cg = Nas_cg.make Kernel.W in
  let inline =
    Bfs.search
      ~options:{ Bfs.default_options with base = cg.Kernel.hints }
      (Kernel.target cg)
  in
  let inline_text = Config.print cg.Kernel.program inline.Bfs.final in
  let a = connect () and b = connect () in
  let t0 = Unix.gettimeofday () in
  let id_a = ok (Client.submit a (spec "cg")) in
  let st_a, text_a, _ = ok (Client.wait a id_a) in
  let dt_a = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let id_b = ok (Client.submit b (spec "cg")) in
  let st_b, text_b, _ = ok (Client.wait b id_b) in
  let dt_b = Unix.gettimeofday () -. t1 in
  Client.close a;
  Client.close b;
  let same_a = String.equal text_a inline_text in
  let same_b = String.equal text_b inline_text in
  Format.printf "%-22s %7s %11s %7s %9s %10s@." "campaign" "evals" "store hits"
    "hit %" "wall (s)" "identical";
  Format.printf "%-22s %7d %11d %6.1f%% %9.3f %10b@." "cg.W (client A)"
    st_a.Wire.tested st_a.Wire.store_hits
    (100.0 *. hit_frac st_a)
    dt_a same_a;
  Format.printf "%-22s %7d %11d %6.1f%% %9.3f %10b@." "cg.W (client B, dup)"
    st_b.Wire.tested st_b.Wire.store_hits
    (100.0 *. hit_frac st_b)
    dt_b same_b;
  if not (same_a && same_b) then begin
    Format.printf
      "!! served campaigns diverged from inline search (A identical: %b, B identical: \
       %b)@."
      same_a same_b;
    exit 1
  end;
  if hit_frac st_b < 0.5 then begin
    Format.printf "!! duplicate campaign only %.1f%% served from the store (want >= 50%%)@."
      (100.0 *. hit_frac st_b);
    exit 1
  end;

  (* throughput: 4 concurrent clients, overlapping cg/mg campaigns racing
     through the shared substrate *)
  let benches = [| "cg"; "mg"; "cg"; "mg" |] in
  let results = Array.make (Array.length benches) None in
  let t2 = Unix.gettimeofday () in
  let clients =
    Array.mapi
      (fun i bench ->
        Thread.create
          (fun () ->
            let c = connect () in
            let id = ok (Client.submit c (spec bench)) in
            let st, text, _ = ok (Client.wait c id) in
            Client.close c;
            results.(i) <- Some (bench, st, text, Unix.gettimeofday () -. t2))
          ())
      benches
  in
  Array.iter Thread.join clients;
  let wall = Unix.gettimeofday () -. t2 in
  Format.printf "@.%d concurrent clients, overlapping campaigns:@."
    (Array.length benches);
  let rows =
    Array.to_list results
    |> List.mapi (fun i r ->
           match r with
           | None ->
               Format.printf "!! client %d never finished@." i;
               exit 1
           | Some (bench, st, text, dt) ->
               Format.printf "%-22s %7d %11d %6.1f%% %9.3f@."
                 (Printf.sprintf "%s.W (client %d)" bench (i + 1))
                 st.Wire.tested st.Wire.store_hits
                 (100.0 *. hit_frac st)
                 dt;
               (bench, st, text, dt))
  in
  (* overlapping same-benchmark campaigns must also agree with each other *)
  List.iter
    (fun (bench, _, text, _) ->
      List.iter
        (fun (bench', _, text', _) ->
          if String.equal bench bench' && not (String.equal text text') then begin
            Format.printf "!! concurrent duplicate %s.W campaigns diverged@." bench;
            exit 1
          end)
        rows)
    rows;
  let total_evals = List.fold_left (fun n (_, st, _, _) -> n + st.Wire.tested) 0 rows in
  let ss = Store.stats store in
  Format.printf "throughput: %d evaluations in %.3f s (%.1f evals/sec wall)@."
    total_evals wall
    (float_of_int total_evals /. Float.max 1e-9 wall);
  Format.printf "%s@." (Store.report store);
  Format.printf "%s@." (Compile.report cache);
  let stats = Scheduler.stats sched in
  Server.stop srv;
  Scheduler.shutdown sched ();
  Pool.shutdown pool;
  let oc = open_out "BENCH_server.json" in
  Printf.fprintf oc "{\n  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  Printf.fprintf oc
    "  \"acceptance\": {\n\
    \    \"inline_identical_a\": %b,\n\
    \    \"inline_identical_b\": %b,\n\
    \    \"first\": { \"evals\": %d, \"store_hits\": %d, \"seconds\": %.6f },\n\
    \    \"duplicate\": { \"evals\": %d, \"store_hits\": %d, \"hit_rate\": %.4f, \
     \"seconds\": %.6f }\n\
    \  },\n"
    same_a same_b st_a.Wire.tested st_a.Wire.store_hits dt_a st_b.Wire.tested
    st_b.Wire.store_hits (hit_frac st_b) dt_b;
  Printf.fprintf oc "  \"concurrent\": [\n";
  List.iteri
    (fun i (bench, (st : Wire.job_status), _, dt) ->
      Printf.fprintf oc
        "    { \"kernel\": \"%s.W\", \"evals\": %d, \"store_hits\": %d, \"hit_rate\": \
         %.4f, \"seconds\": %.6f }%s\n"
        bench st.Wire.tested st.Wire.store_hits (hit_frac st) dt
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc
    "  \"totals\": { \"jobs\": %d, \"evals\": %d, \"wall_seconds\": %.6f, \
     \"evals_per_sec\": %.2f,\n\
    \    \"store_hits\": %d, \"store_misses\": %d, \"store_hit_rate\": %.4f, \
     \"store_entries\": %d,\n\
    \    \"cache_hits\": %d, \"cache_misses\": %d }\n"
    stats.Wire.submitted total_evals wall
    (float_of_int total_evals /. Float.max 1e-9 wall)
    ss.Store.hits ss.Store.misses (Store.hit_rate ss) ss.Store.entries
    stats.Wire.cache_hits stats.Wire.cache_misses;
  Printf.fprintf oc "}\n";
  close_out oc;
  Format.printf "(written to BENCH_server.json)@."

(* The distributed worker fleet vs the in-process pool: the same ep.W
   campaign driven (a) by the daemon's own pool, then (b) sharded over
   1/2/4 in-process `craft worker` loops connected through a real Unix
   socket. Asserts — exit 1 on divergence — that every fleet campaign
   reproduces the pool campaign's final configuration. Emits
   BENCH_fleet.json. Workers are hosted as threads in this process, so
   the numbers measure the protocol and dispatch overhead, not extra
   machines. *)
let fleet_bench () =
  section "Distributed worker fleet: campaign wall time vs in-process pool";
  let spec =
    { Wire.bench = "ep"; cls = "W"; shadow = false; priority = 0; eval_steps = None; formats = ""; strategy = "" }
  in
  let resolve (s : Wire.job_spec) =
    match (s.Wire.bench, s.Wire.cls) with
    | "ep", "W" -> Ok (Nas_ep.make Kernel.W)
    | b, c -> Error (Printf.sprintf "unknown benchmark %s.%s" b c)
  in
  let run_campaign ~fleet_workers =
    let pool = Pool.create ~options:{ Pool.default_options with workers = 4 } () in
    let cache = Compile.create_cache () in
    let store = Store.create () in
    let fleet =
      if fleet_workers = 0 then None
      else
        Some
          (Fleet.create
             ~options:{ Fleet.default_options with heartbeat_every = 0.5 }
             ())
    in
    let sched = Scheduler.create ?fleet ~resolve ~pool ~cache ~store () in
    let path = Filename.temp_file "craft_bench_fleet" ".sock" in
    Sys.remove path;
    let srv = Server.start ?fleet ~scheduler:sched (Server.Unix_path path) in
    let stop_flag = Atomic.make false in
    let threads =
      List.init fleet_workers (fun i ->
          Thread.create
            (fun () ->
              ignore
                (Worker.run
                   ~name:(Printf.sprintf "bench-w%d" i)
                   ~stop:(fun () -> Atomic.get stop_flag)
                   ~resolve:(fun ~bench ~cls ->
                     resolve
                       { Wire.bench; cls; shadow = false; priority = 0; eval_steps = None; formats = ""; strategy = "" })
                   (Server.Unix_path path)))
            ())
    in
    Option.iter
      (fun f ->
        let rec wait n =
          if n > 2000 then begin
            Format.printf "!! fleet bench: workers never joined@.";
            exit 1
          end;
          if Fleet.live_workers f < fleet_workers then begin
            Thread.delay 0.005;
            wait (n + 1)
          end
        in
        wait 0)
      fleet;
    let t0 = Unix.gettimeofday () in
    let id =
      match Scheduler.submit sched spec with
      | Ok id -> id
      | Error e ->
          Format.printf "!! fleet bench submit: %s@." e;
          exit 1
    in
    let rec wait () =
      match Scheduler.result sched id with
      | Ok r -> r
      | Error _ ->
          Thread.delay 0.01;
          wait ()
    in
    let st, text, _ = wait () in
    let wall = Unix.gettimeofday () -. t0 in
    Atomic.set stop_flag true;
    List.iter Thread.join threads;
    let fs = Option.map Fleet.stats fleet in
    Server.stop srv;
    Scheduler.shutdown sched ();
    Option.iter Fleet.stop fleet;
    Pool.shutdown pool;
    (text, st, wall, fs)
  in
  let base_text, base_st, base_wall, _ = run_campaign ~fleet_workers:0 in
  Format.printf "%-24s %7s %9s %8s %8s %10s@." "campaign" "evals" "wall (s)"
    "remote" "local" "identical";
  Format.printf "%-24s %7d %9.3f %8s %8s %10s@." "ep.W (in-process pool)"
    base_st.Wire.tested base_wall "-" "-" "-";
  let rows =
    List.map
      (fun n ->
        let text, st, wall, fs = run_campaign ~fleet_workers:n in
        let same = String.equal text base_text in
        let remote, local =
          match fs with
          | Some s -> (s.Fleet.remote, s.Fleet.local_fallbacks)
          | None -> (0, 0)
        in
        Format.printf "%-24s %7d %9.3f %8d %8d %10b@."
          (Printf.sprintf "ep.W (%d worker%s)" n (if n = 1 then "" else "s"))
          st.Wire.tested wall remote local same;
        (n, st, wall, remote, local, same))
      [ 1; 2; 4 ]
  in
  if List.exists (fun (_, _, _, _, _, same) -> not same) rows then begin
    Format.printf "!! fleet campaigns diverged from the in-process pool final@.";
    exit 1
  end;
  let oc = open_out "BENCH_fleet.json" in
  Printf.fprintf oc "{\n  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  Printf.fprintf oc
    "  \"baseline\": { \"kernel\": \"ep.W\", \"evals\": %d, \"seconds\": %.6f },\n"
    base_st.Wire.tested base_wall;
  Printf.fprintf oc "  \"fleet\": [\n";
  List.iteri
    (fun i (n, (st : Wire.job_status), wall, remote, local, same) ->
      Printf.fprintf oc
        "    { \"workers\": %d, \"evals\": %d, \"seconds\": %.6f, \"remote_evals\": \
         %d, \"local_fallbacks\": %d, \"identical_final\": %b }%s\n"
        n st.Wire.tested wall remote local same
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Format.printf "(written to BENCH_fleet.json)@."

(* ---------------------------------------------------------- recovery *)

(* The durability tax and the recovery speed behind `craft serve
   --state-dir`: store append throughput under the three fsync policies
   (never / batched / per-record), cold replay of the resulting log,
   offline compaction of a log grown across many daemon lifetimes, and
   the job-table WAL's append + replay. Asserts — exit 1 — that replay
   returns every record and compaction keeps exactly the distinct keys.
   Emits BENCH_recovery.json. *)
let recovery_bench () =
  section "Durability: store fsync policies, replay, compaction, WAL";
  let dir = Filename.temp_file "craft_bench_rec" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
  @@ fun () ->
  let key i = Printf.sprintf "%016x/steps=default/%016x" i ((i * 2654435761) land max_int) in
  let verdict i = if i land 7 = 0 then Verdict.Fail_verify else Verdict.Pass in
  (* throughput of the append path under each fsync policy; per-record
     fsync gets a smaller n so slow disks keep the bench quick *)
  let policies = [ (0, "flush only", 4000); (32, "batched (32)", 4000); (1, "per record", 400) ] in
  Format.printf "%-16s %9s %10s %14s@." "fsync policy" "records" "wall (s)" "records/sec";
  let appends =
    List.map
      (fun (fsync_every, label, n) ->
        let path = Filename.concat dir (Printf.sprintf "store_%d.log" fsync_every) in
        let store = Store.create ~path ~fsync_every () in
        let t0 = Unix.gettimeofday () in
        for i = 0 to n - 1 do
          ignore (Store.find_or_compute store ~key:(key i) (fun () -> verdict i))
        done;
        Store.close store;
        let dt = Unix.gettimeofday () -. t0 in
        Format.printf "%-16s %9d %10.3f %14.0f@." label n dt
          (float_of_int n /. Float.max 1e-9 dt);
        (label, fsync_every, path, n, dt))
      policies
  in
  (* cold replay: a restarted daemon reading its whole log back *)
  let _, _, replay_path, replay_n, _ = List.hd appends in
  let t0 = Unix.gettimeofday () in
  let reopened = Store.create ~path:replay_path () in
  let replay_dt = Unix.gettimeofday () -. t0 in
  let replayed = (Store.stats reopened).Store.replayed in
  Store.close reopened;
  Format.printf "@.replay: %d record(s) in %.3f s (%.0f records/sec)@." replayed replay_dt
    (float_of_int replayed /. Float.max 1e-9 replay_dt);
  if replayed <> replay_n then begin
    Format.printf "!! replay lost records: wrote %d, replayed %d@." replay_n replayed;
    exit 1
  end;
  (* compaction: the same keys re-appended across simulated lifetimes *)
  let lifetimes = 4 and distinct = 1000 in
  let compact_path = Filename.concat dir "store_compact.log" in
  let oc = open_out compact_path in
  output_string oc "# craft-store v1\n";
  for life = 0 to lifetimes - 1 do
    for i = 0 to distinct - 1 do
      Printf.fprintf oc "%s %s %d\n"
        (Verdict.escape (key i))
        (Verdict.verdict_to_string (verdict i))
        ((life * distinct) + i)
    done
  done;
  close_out oc;
  let t0 = Unix.gettimeofday () in
  let kept, dropped =
    match Store.compact ~path:compact_path with
    | Ok r -> r
    | Error why ->
        Format.printf "!! compaction failed: %s@." why;
        exit 1
  in
  let compact_dt = Unix.gettimeofday () -. t0 in
  Format.printf "compaction: %d record(s) -> %d kept, %d dropped in %.3f s@."
    (lifetimes * distinct) kept dropped compact_dt;
  if kept <> distinct then begin
    Format.printf "!! compaction kept %d, want %d distinct@." kept distinct;
    exit 1
  end;
  (* the job-table WAL: lifecycle appends and a restart's replay *)
  let wal_n = 1000 in
  let wal_path = Filename.concat dir "jobs.wal" in
  let wal = Wal.create ~path:wal_path in
  let spec = { Wire.bench = "cg"; cls = "W"; shadow = false; priority = 0; eval_steps = None; formats = ""; strategy = "" } in
  let t0 = Unix.gettimeofday () in
  for i = 1 to wal_n do
    let id = Printf.sprintf "j%04d" i in
    Wal.append wal (Wal.Submitted { id; spec });
    Wal.append wal (Wal.Outcome { id; state = Wire.Done; summary = "tested 45" })
  done;
  Wal.close wal;
  let wal_append_dt = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let table = Wal.replay (Wal.load ~path:wal_path) in
  let wal_replay_dt = Unix.gettimeofday () -. t0 in
  Format.printf "wal: %d jobs appended (fsync each) in %.3f s, replayed in %.3f s@."
    wal_n wal_append_dt wal_replay_dt;
  if List.length table <> wal_n then begin
    Format.printf "!! wal replay listed %d job(s), want %d@." (List.length table) wal_n;
    exit 1
  end;
  let oc = open_out "BENCH_recovery.json" in
  Printf.fprintf oc "{\n  \"appends\": [\n";
  List.iteri
    (fun i (label, fsync_every, _, n, dt) ->
      Printf.fprintf oc
        "    { \"policy\": \"%s\", \"fsync_every\": %d, \"records\": %d, \"seconds\": \
         %.6f, \"records_per_sec\": %.1f }%s\n"
        label fsync_every n dt
        (float_of_int n /. Float.max 1e-9 dt)
        (if i = List.length appends - 1 then "" else ","))
    appends;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"replay\": { \"records\": %d, \"seconds\": %.6f },\n" replayed
    replay_dt;
  Printf.fprintf oc
    "  \"compaction\": { \"records_in\": %d, \"kept\": %d, \"dropped\": %d, \"seconds\": \
     %.6f },\n"
    (lifetimes * distinct) kept dropped compact_dt;
  Printf.fprintf oc
    "  \"wal\": { \"jobs\": %d, \"append_seconds\": %.6f, \"replay_seconds\": %.6f }\n"
    wal_n wal_append_dt wal_replay_dt;
  Printf.fprintf oc "}\n";
  close_out oc;
  Format.printf "(written to BENCH_recovery.json)@."

(* --------------------------------------------------------- microbench *)

let microbench () =
  section "Microbenchmarks (Bechamel): framework costs";
  let open Bechamel in
  let open Toolkit in
  let ep = Nas_ep.make Kernel.W in
  let patched = Patcher.patch ep.Kernel.program Config.empty in
  let cgw = Nas_cg.make Kernel.W in
  let tests =
    Test.make_grouped ~name:"craft"
      [
        Test.make ~name:"vm: native ep.W run"
          (Staged.stage (fun () ->
               let vm = Vm.create ep.Kernel.program in
               ep.Kernel.setup vm;
               Vm.run vm));
        Test.make ~name:"vm: instrumented ep.W run"
          (Staged.stage (fun () ->
               let vm = Vm.create ~checked:true patched in
               ep.Kernel.setup vm;
               Vm.run vm));
        Test.make ~name:"vm: instrumented ep.W run (dataflow-optimized)"
          (Staged.stage
             (let opt = Patcher.patch ~dataflow:true ep.Kernel.program Config.empty in
              fun () ->
                let vm = Vm.create ~checked:true opt in
                ep.Kernel.setup vm;
                Vm.run vm));
        Test.make ~name:"patcher: patch cg.W"
          (Staged.stage (fun () -> ignore (Patcher.patch cgw.Kernel.program Config.empty)));
        Test.make ~name:"config: print+parse cg.W"
          (Staged.stage (fun () ->
               let txt = Config.print cgw.Kernel.program Config.empty in
               ignore (Config.parse cgw.Kernel.program txt)));
        Test.make ~name:"fpbits: downcast+upcast"
          (Staged.stage (fun () -> ignore (Replaced.upcast (Replaced.downcast 0.1))));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some (est :: _) -> Format.printf "%-40s %14.0f ns/run@." name est
      | _ -> Format.printf "%-40s (no estimate)@." name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("fig1", fig1);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("sec31", sec31);
    ("sec32", sec32);
    ("sec33", sec33);
    ("ablation", ablation);
    ("dataflow", dataflow);
    ("cancel", cancel);
    ("strategies", strategies);
    ("packed", packed);
    ("pool", pool_bench);
    ("shadow", shadow_bench);
    ("vm", vm_bench);
    ("formats", formats_bench);
    ("server", server_bench);
    ("fleet", fleet_bench);
    ("recovery", recovery_bench);
    ("micro", microbench);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst sections
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Format.printf "unknown section %S; available: %s@." name
            (String.concat " " (List.map fst sections)))
    requested;
  Format.printf "@.total bench time: %.1f s@." (Unix.gettimeofday () -. t0)
